//! Budget-escalation retry on top of the resumable entry points.
//!
//! A decision that dies on its valuation/candidate budget often just needs a
//! bigger budget. [`decide_with_retry`] runs the decision through
//! [`try_rcdp_resumed_guarded`], and when the verdict is `Unknown` on a
//! *count* budget it escalates the budget by [`RetryPolicy::escalation_factor`]
//! and resumes from the captured [`Checkpoint`] — so work committed by earlier
//! attempts is never repeated. The policy is fully deterministic: escalation
//! is a pure function of the attempt number and the backoff is counted in
//! guard ticks, not wall-clock sleeps, so a retried decision replays
//! identically under test.
//!
//! Deadline and cancellation stops are *not* retried here: more budget does
//! not buy more wall-clock, and a cancelled decision was cancelled on
//! purpose. Callers who want those resumed can feed the checkpoint back into
//! [`try_rcdp_resumed_guarded`] themselves.

use ric_complete::{
    BudgetLimit, Checkpoint, Guard, Query, QueryVerdict, SearchBudget, Setting, Verdict,
};
use ric_data::Database;
use ric_telemetry::Probe;

use crate::guard::{try_rcdp_resumed_guarded, try_rcqp_resumed_guarded, Decision, DecisionError};

/// When and how [`decide_with_retry`] escalates.
///
/// All three knobs are deterministic — attempt `i` always runs at
/// `base * factor^(i-1)` (saturating), and the backoff between attempts is a
/// fixed number of guard ticks, never a sleep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retry).
    pub max_attempts: u32,
    /// Multiplier applied to `max_valuations` and `max_candidates` on each
    /// retry. A factor of `1` retries at the same budget (useful only to
    /// re-drive a decision through checkpoint capture in tests).
    pub escalation_factor: u32,
    /// Deterministic pause between attempts, counted in guard-check ticks.
    pub backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            escalation_factor: 2,
            backoff_ticks: 0,
        }
    }
}

impl RetryPolicy {
    /// The budget attempt `attempt` (1-based) runs at: the count budgets of
    /// `base` scaled by `escalation_factor^(attempt-1)`, saturating. The
    /// non-count limits (delta tuples, fresh values, deadline, engine) are
    /// left untouched — escalation buys a deeper search, not a different one.
    pub fn budget_for(&self, base: &SearchBudget, attempt: u32) -> SearchBudget {
        let factor = u64::from(self.escalation_factor).saturating_pow(attempt.saturating_sub(1));
        let mut budget = *base;
        budget.max_valuations = base.max_valuations.saturating_mul(factor);
        budget.max_candidates = base.max_candidates.saturating_mul(factor);
        budget
    }

    /// Is this `Unknown` stop worth another attempt? Only the count budgets
    /// escalation can actually relieve.
    fn retryable(limit: BudgetLimit) -> bool {
        matches!(
            limit,
            BudgetLimit::MaxValuations | BudgetLimit::MaxCandidates
        )
    }

    /// The deterministic inter-attempt pause: spin the guard's cooperative
    /// check `backoff_ticks` times. No wall-clock sleeps anywhere.
    fn backoff(&self, guard: &Guard) {
        for _ in 0..self.backoff_ticks {
            let _ = guard.check();
        }
    }
}

/// What [`decide_with_retry`] / [`decide_query_with_retry`] hand back.
#[derive(Clone, Debug)]
pub struct RetryOutcome<T> {
    /// The final attempt's verdict and explanation.
    pub decision: Decision<T>,
    /// How many attempts ran (1 = no retry was needed).
    pub attempts: u32,
    /// The escalated budget the final attempt ran at.
    pub budget_used: SearchBudget,
    /// The final attempt's checkpoint, when even the escalated budget was
    /// not enough — callers can persist it and come back later.
    pub checkpoint: Option<Checkpoint>,
}

/// RCDP with deterministic budget-escalation retry.
///
/// Runs [`try_rcdp_resumed_guarded`] at `policy.budget_for(base, 1)`, and
/// while the verdict is `Unknown` on a retryable count budget and attempts
/// remain, escalates and resumes from the captured checkpoint. Each attempt
/// gets a fresh [`Guard`] for its escalated budget; the attempt number and
/// outcome are recorded as `retry.attempt` notes on `probe`.
pub fn decide_with_retry(
    setting: &Setting,
    query: &Query,
    db: &Database,
    base: &SearchBudget,
    policy: &RetryPolicy,
    probe: Probe<'_>,
) -> Result<RetryOutcome<Verdict>, DecisionError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut prior: Option<Checkpoint> = None;
    let mut attempt = 1u32;
    loop {
        let budget = policy.budget_for(base, attempt);
        let guard = Guard::new(&budget);
        if attempt > 1 {
            policy.backoff(&guard);
        }
        probe.note("retry.attempt", || {
            format!(
                "attempt {attempt}/{max_attempts} at valuation budget {} / candidate budget {}",
                budget.max_valuations, budget.max_candidates
            )
        });
        let resumed =
            try_rcdp_resumed_guarded(setting, query, db, &budget, &guard, probe, prior.as_ref())?;
        let retry = attempt < max_attempts
            && resumed.checkpoint.is_some()
            && matches!(
                &resumed.decision.verdict,
                Verdict::Unknown { stats } if RetryPolicy::retryable(stats.limit)
            );
        if !retry {
            return Ok(RetryOutcome {
                decision: resumed.decision,
                attempts: attempt,
                budget_used: budget,
                checkpoint: resumed.checkpoint,
            });
        }
        prior = resumed.checkpoint;
        attempt += 1;
    }
}

/// RCQP with deterministic budget-escalation retry; the RCQP analogue of
/// [`decide_with_retry`].
pub fn decide_query_with_retry(
    setting: &Setting,
    query: &Query,
    base: &SearchBudget,
    policy: &RetryPolicy,
    probe: Probe<'_>,
) -> Result<RetryOutcome<QueryVerdict>, DecisionError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut prior: Option<Checkpoint> = None;
    let mut attempt = 1u32;
    loop {
        let budget = policy.budget_for(base, attempt);
        let guard = Guard::new(&budget);
        if attempt > 1 {
            policy.backoff(&guard);
        }
        probe.note("retry.attempt", || {
            format!(
                "attempt {attempt}/{max_attempts} at valuation budget {} / candidate budget {}",
                budget.max_valuations, budget.max_candidates
            )
        });
        let resumed =
            try_rcqp_resumed_guarded(setting, query, &budget, &guard, probe, prior.as_ref())?;
        let retry = attempt < max_attempts
            && resumed.checkpoint.is_some()
            && matches!(
                &resumed.decision.verdict,
                QueryVerdict::Unknown { stats } if RetryPolicy::retryable(stats.limit)
            );
        if !retry {
            return Ok(RetryOutcome {
                decision: resumed.decision,
                attempts: attempt,
                budget_used: budget,
                checkpoint: resumed.checkpoint,
            });
        }
        prior = resumed.checkpoint;
        attempt += 1;
    }
}

//! Analysis-gated decision entry points.
//!
//! [`analyze`] runs the `ric-analysis` static pass over a setting and query;
//! the `*_analyzed` functions here put that pass in front of the deciders:
//!
//! 1. **Gate** — a report with Error-level diagnostics (unsafe FO, invalid
//!    FP, arity-broken constraints, …) is rejected up front with
//!    [`DecisionError::Rejected`], instead of surfacing as a deep evaluator
//!    error or a panic mid-search.
//! 2. **Dispatch** — certified fragment downgrades are applied before the
//!    decision, so an FO-wrapped conjunctive query pays the exact Σᵖ₂ CQ
//!    cell of Tables I/II rather than the bounded FO search. Each applied
//!    downgrade bumps the `analysis.downgrade` telemetry counter, and the
//!    full report is attached as an `analysis.report` note (JSON, the same
//!    shape [`AnalysisReport::to_json`] serializes).
//!
//! The rewrites are equivalence-certified by differential evaluation, so the
//! verdict is the same one the naive dispatch would eventually produce —
//! only cheaper. `BENCH_ANALYSIS.json` (see EXPERIMENTS.md) measures the
//! effect.

use crate::guard::{try_rcdp_guarded, try_rcqp_guarded, Decision, DecisionError};
pub use ric_analysis::analyze;
use ric_analysis::AnalysisReport;
use ric_complete::{Guard, Query, QueryVerdict, SearchBudget, Setting, Verdict};
use ric_data::Database;
use ric_telemetry::Probe;

/// Run the gate: reject Error-level reports, otherwise apply the certified
/// rewrites and record telemetry.
fn gate(
    setting: &Setting,
    query: &Query,
    probe: Probe<'_>,
) -> Result<(Setting, Query, AnalysisReport), DecisionError> {
    let report = analyze(setting, query);
    probe.note("analysis.report", || report.to_json().pretty());
    if report.has_errors() {
        probe.count("analysis.rejected", 1);
        return Err(DecisionError::Rejected(Box::new(report)));
    }
    let downgrades = report.downgrade_count();
    if downgrades > 0 {
        probe.count("analysis.downgrade", downgrades as u64);
    }
    let (s, q) = report.apply(setting, query);
    Ok((s, q, report))
}

/// [`try_rcdp`](crate::try_rcdp) behind the static-analysis gate: rejects
/// Error-level settings with [`DecisionError::Rejected`] and dispatches the
/// certified minimal-fragment rewrite to the cheapest Table I cell.
pub fn try_rcdp_analyzed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, DecisionError> {
    try_rcdp_analyzed_probed(setting, query, db, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcdp_analyzed`] with a telemetry probe attached. The probe sees the
/// `analysis.report` note, the `analysis.downgrade` / `analysis.rejected`
/// counters, and then the ordinary decision telemetry.
pub fn try_rcdp_analyzed_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<Verdict>, DecisionError> {
    let (s, q, _report) = gate(setting, query, probe)?;
    try_rcdp_guarded(&s, &q, db, budget, &Guard::new(budget), probe)
}

/// [`try_rcqp`](crate::try_rcqp) behind the static-analysis gate (Table II).
pub fn try_rcqp_analyzed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
) -> Result<QueryVerdict, DecisionError> {
    try_rcqp_analyzed_probed(setting, query, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcqp_analyzed`] with a telemetry probe attached.
pub fn try_rcqp_analyzed_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<QueryVerdict>, DecisionError> {
    let (s, q, _report) = gate(setting, query, probe)?;
    try_rcqp_guarded(&s, &q, budget, &Guard::new(budget), probe)
}

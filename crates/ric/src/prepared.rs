//! Prepared decisions: compile the setting once, decide many times.
//!
//! [`prepare`] builds a [`PreparedSetting`] — the setting's upper-bound
//! tableaux plus, under [`Engine::Planned`](ric_complete::Engine::Planned),
//! cost-based compiled query plans whose join orders are estimated from the
//! statistics of a representative database. The `try_*_prepared` entry
//! points mirror [`try_rcdp`](crate::try_rcdp) / [`try_rcqp`](crate::try_rcqp)
//! (panic-isolated, explainable) but reuse the shared preparation, emitting
//! `plan.reuse` instead of `plan.compile` per decision.
//!
//! Preparation is advisory: statistics steer join orders only, so a prepared
//! decision returns the same verdict, witness, and deterministic counters as
//! a fresh one — on any database, even one the statistics never saw.

use crate::guard::{isolate, Decision, DecisionError};
use ric_complete::{Engine, PreparedSetting, Query, QueryVerdict, RcError, Setting, Verdict};
use ric_data::Database;
use ric_telemetry::Probe;

/// Compile `setting` once for `engine`, costing planned join orders from
/// `stats_db`'s statistics. With a non-planned engine this still hoists the
/// upper-bound tableau preparation out of the per-decision path; with
/// [`Engine::Planned`](Engine::Planned) it also compiles the plans.
pub fn prepare(
    setting: &Setting,
    stats_db: &Database,
    engine: Engine,
) -> Result<PreparedSetting, RcError> {
    PreparedSetting::prepare(setting.clone(), stats_db, engine)
}

/// [`try_rcdp`](crate::try_rcdp) against a [`PreparedSetting`]: the decision
/// reuses the prepared constraint compilation instead of rebuilding it.
pub fn try_rcdp_prepared(
    prepared: &PreparedSetting,
    query: &Query,
    db: &Database,
    budget: &ric_complete::SearchBudget,
) -> Result<Verdict, DecisionError> {
    try_rcdp_prepared_probed(prepared, query, db, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcdp_prepared`] with a telemetry probe attached.
pub fn try_rcdp_prepared_probed(
    prepared: &PreparedSetting,
    query: &Query,
    db: &Database,
    budget: &ric_complete::SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<Verdict>, DecisionError> {
    isolate(probe, |p| prepared.rcdp_probed(query, db, budget, p))
}

/// [`try_rcqp`](crate::try_rcqp) against a [`PreparedSetting`].
pub fn try_rcqp_prepared(
    prepared: &PreparedSetting,
    query: &Query,
    budget: &ric_complete::SearchBudget,
) -> Result<QueryVerdict, DecisionError> {
    try_rcqp_prepared_probed(prepared, query, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcqp_prepared`] with a telemetry probe attached.
pub fn try_rcqp_prepared_probed(
    prepared: &PreparedSetting,
    query: &Query,
    budget: &ric_complete::SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<QueryVerdict>, DecisionError> {
    isolate(probe, |p| prepared.rcqp_probed(query, budget, p))
}

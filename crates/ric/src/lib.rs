//! # `ric` — relative information completeness
//!
//! A Rust implementation of *Relative Information Completeness* (Wenfei Fan
//! and Floris Geerts, PODS 2009 / ACM TODS 35(4), 2010): given master data
//! `D_m` and containment constraints `V`, decide whether a partially closed
//! database `D` has complete information to answer a query `Q`
//! ([`rcdp`](fn@rcdp)), and whether *any* such database exists
//! ([`rcqp`](fn@rcqp)).
//!
//! ```
//! use ric::prelude::*;
//!
//! // Master data: the complete list of domestic customers.
//! let schema = Schema::from_relations(vec![
//!     RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
//! ]).unwrap();
//! let supt = schema.rel_id("Supt").unwrap();
//! let master = Schema::from_relations(vec![
//!     RelationSchema::infinite("DCust", &["cid"]),
//! ]).unwrap();
//! let dcust = master.rel_id("DCust").unwrap();
//! let mut dm = Database::empty(&master);
//! dm.insert(dcust, Tuple::new([Value::str("c1")]));
//! dm.insert(dcust, Tuple::new([Value::str("c2")]));
//!
//! // Constraint: supported customers are bounded by the master list.
//! let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
//!     CcBody::Proj(Projection::new(supt, vec![2])), dcust, vec![0],
//! )]);
//! let setting = Setting::new(schema.clone(), master, dm, v);
//!
//! // The database currently only knows about c1.
//! let mut db = Database::empty(&schema);
//! db.insert(supt, Tuple::new([Value::str("e0"), Value::str("d"), Value::str("c1")]));
//!
//! // Is the answer to "customers supported by e0" complete?
//! let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).").unwrap().into();
//! let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
//! assert!(verdict.is_incomplete()); // c2 could still appear
//! ```
//!
//! The crate is a facade over the workspace:
//!
//! * [`data`] — values, domains, schemas, databases;
//! * [`query`] — CQ, UCQ, ∃FO⁺, FO, and datalog with evaluators and parser;
//! * [`constraints`] — containment constraints and classical integrity
//!   constraints with the Proposition 2.1 compilers;
//! * [`complete`] — the RCDP/RCQP deciders, characterizations, witnesses;
//! * [`reductions`] — the hardness constructions as instance generators;
//! * [`mdm`] — master-data-management scenarios and the Section 2.3
//!   paradigms;
//! * [`telemetry`] — the [`Probe`]/[`Sink`] observability layer: attach a
//!   [`Collector`] to `rcdp_probed`/`rcqp_probed` for counters, span
//!   timings, and decision notes (see `examples/observe_search.rs`);
//! * [`monitor`] — streaming incremental monitoring: a [`Monitor`] keeps
//!   many registered settings' RCDP verdicts continuously up to date across
//!   a transactional insert/delete stream, with footprint-based skipping,
//!   verdict fast paths, and fingerprint memoization (see
//!   `examples/monitor_stream.rs` and DESIGN.md §12);
//! * [`analysis`] — the static pass in front of the deciders: typed
//!   diagnostics (`RIC001`…) and certified minimal-fragment classification.
//!   [`analyze`] produces the [`AnalysisReport`]; [`try_rcdp_analyzed`] /
//!   [`try_rcqp_analyzed`] reject Error-level settings and dispatch
//!   certified downgrades to the cheapest Table I/II cell (see
//!   `examples/analyze_setting.rs` and DESIGN.md §9).
//!
//! ## Robustness
//!
//! Decisions can run for a long time (the decidable cells are Σᵖ₂ /
//! NEXPTIME-complete). Beyond the count budgets, [`SearchBudget::deadline`]
//! adds a wall-clock limit, a [`CancelToken`] aborts an in-flight decision
//! from another thread, and the [`try_rcdp`] / [`try_rcqp`] entry points
//! convert panics into a typed [`DecisionError`] instead of unwinding. All
//! of these degrade to `Unknown` (or a typed error) — never a wrong answer.
//! See `examples/guarded_decisions.rs` and the "Robustness & degradation
//! semantics" section of `DESIGN.md`.

mod analyzed;
mod guard;
mod prepared;
mod reasoned;
mod retry;

pub use analyzed::{
    analyze, try_rcdp_analyzed, try_rcdp_analyzed_probed, try_rcqp_analyzed,
    try_rcqp_analyzed_probed,
};
pub use guard::{
    try_rcdp, try_rcdp_guarded, try_rcdp_probed, try_rcdp_resumed, try_rcdp_resumed_guarded,
    try_rcdp_resumed_probed, try_rcqp, try_rcqp_guarded, try_rcqp_probed, try_rcqp_resumed,
    try_rcqp_resumed_guarded, try_rcqp_resumed_probed, Decision, DecisionError, Resumed,
};
pub use prepared::{
    prepare, try_rcdp_prepared, try_rcdp_prepared_probed, try_rcqp_prepared,
    try_rcqp_prepared_probed,
};
pub use reasoned::{
    try_rcdp_static, try_rcdp_static_probed, try_rcqp_static, try_rcqp_static_probed,
    ReasonedSetting,
};
pub use retry::{decide_query_with_retry, decide_with_retry, RetryOutcome, RetryPolicy};

pub use ric_analysis as analysis;
pub use ric_complete as complete;
pub use ric_constraints as constraints;
pub use ric_data as data;
pub use ric_mdm as mdm;
pub use ric_monitor as monitor;
pub use ric_plan as plan;
pub use ric_query as query;
pub use ric_reason as reason;
pub use ric_reductions as reductions;
pub use ric_telemetry as telemetry;

pub use ric_analysis::{AnalysisReport, Classification, Code, Diagnostic, Pointer, Severity};
pub use ric_complete::{
    rcdp, rcdp_fingerprint, rcdp_guarded, rcdp_probed, rcqp, rcqp_fingerprint, rcqp_guarded,
    rcqp_probed, BudgetLimit, CancelToken, Checkpoint, CheckpointError, DecisionKind, Engine,
    FaultPlan, Frontier, Guard, Interrupt, MeterKind, PreparedSetting, Progress, Query,
    QueryVerdict, RcError, SearchBudget, SearchStats, Setting, Verdict, CHECKPOINT_VERSION,
};
pub use ric_data::SplitMix64;
pub use ric_monitor::{
    Monitor, MonitorCounters, MonitorError, Op, SettingId, SettingVerdict, Status, Target, Txn,
    VerdictChange,
};
pub use ric_reason::{CapKind, CardinalityCap, CoverFact, ImpliedCc, ReasonNote, StaticFacts};
pub use ric_telemetry::{
    Collector, Event, Explain, FaultSink, JsonlSink, Metrics, PrettySink, Probe, Report, Sink,
    SpanTree, TeeSink, TraceState,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::analyzed::{
        analyze, try_rcdp_analyzed, try_rcdp_analyzed_probed, try_rcqp_analyzed,
        try_rcqp_analyzed_probed,
    };
    pub use crate::guard::{
        try_rcdp, try_rcdp_guarded, try_rcdp_probed, try_rcdp_resumed, try_rcdp_resumed_guarded,
        try_rcdp_resumed_probed, try_rcqp, try_rcqp_guarded, try_rcqp_probed, try_rcqp_resumed,
        try_rcqp_resumed_guarded, try_rcqp_resumed_probed, Decision, DecisionError, Resumed,
    };
    pub use crate::prepared::{
        prepare, try_rcdp_prepared, try_rcdp_prepared_probed, try_rcqp_prepared,
        try_rcqp_prepared_probed,
    };
    pub use crate::reasoned::{
        try_rcdp_static, try_rcdp_static_probed, try_rcqp_static, try_rcqp_static_probed,
        ReasonedSetting,
    };
    pub use crate::retry::{decide_query_with_retry, decide_with_retry, RetryOutcome, RetryPolicy};
    pub use ric_analysis::{AnalysisReport, Code, Diagnostic, Pointer, Severity};
    pub use ric_complete::{
        rcdp, rcdp_guarded, rcdp_probed, rcqp, rcqp_guarded, rcqp_probed, BudgetLimit, CancelToken,
        Checkpoint, CheckpointError, CounterExample, DecisionKind, Engine, FaultPlan, Guard,
        Interrupt, MeterKind, PreparedSetting, Query, QueryVerdict, RcError, SearchBudget,
        SearchStats, Setting, Verdict,
    };
    pub use ric_constraints::{
        CcBody, CcRhs, Cfd, Cind, ConstraintSet, ContainmentConstraint, Denial, Fd, IndCc,
        LowerBound, Projection,
    };
    pub use ric_data::{
        Attribute, Database, DomainKind, RelId, RelationSchema, Schema, Tuple, Value,
    };
    pub use ric_monitor::{
        Monitor, MonitorCounters, MonitorError, Op, SettingId, SettingVerdict, Status, Target, Txn,
        VerdictChange,
    };
    pub use ric_query::{parse_cq, parse_program, parse_ucq, Cq, Term, Ucq, Var};
    pub use ric_reason::{ReasonNote, StaticFacts};
    pub use ric_telemetry::{Collector, Explain, Probe, Report, Sink, TraceState};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- R(X).").unwrap().into();
        let db = Database::empty(&schema);
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        assert!(verdict.is_incomplete());
    }
}

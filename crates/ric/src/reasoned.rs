//! Reasoned decisions: run the symbolic prover once, decide many times.
//!
//! [`ReasonedSetting::prepare`] runs [`ric_reason::reason`] over one
//! `(setting, query)` pair and bakes its certified [`StaticFacts`] into the
//! decision path three ways:
//!
//! * the per-candidate constraint recheck runs against the **minimized**
//!   `V` — certified-implied constraints are dropped from the loop;
//! * chase-derived **cardinality caps** clamp the planner statistics
//!   (advisory only: join order, never answers);
//! * **static verdicts** short-circuit the search entirely: a certified
//!   statically-unsatisfiable query is `Complete` without enumerating a
//!   single candidate, and a certified cover fact `Q ⊆ body(φ_j)` decides
//!   `Complete` whenever `p_j(D_m) ⊆ Q(D)` holds at decision time.
//!
//! Partial closure is always checked against the **full** constraint set, so
//! a reasoned decision accepts and rejects exactly the databases the
//! unreasoned one does. The `reason_differential` suite pins reasoned
//! decisions verdict-, witness-, and counter-identical to the plain
//! prepared paths.

use crate::guard::{isolate, Decision, DecisionError};
use ric_complete::{Engine, PreparedSetting, Query, QueryVerdict, RcError, Setting, Verdict};
use ric_data::{Database, Tuple};
use ric_plan::CappedStats;
use ric_reason::{CapKind, StaticFacts};
use ric_telemetry::Probe;
use std::collections::BTreeSet;

/// A `(setting, query)` pair compiled through the symbolic prover: static
/// facts plus a [`PreparedSetting`] over the minimized constraint set.
pub struct ReasonedSetting {
    /// The original setting; partial closure is gated on its full `V`.
    setting: Setting,
    /// The query the facts were derived for.
    query: Query,
    /// The certified static artifact.
    facts: StaticFacts,
    /// Prepared over the minimized setting, with cap-clamped statistics.
    prepared: PreparedSetting,
    /// `p_j(D_m)` of the covering constraint, precomputed.
    cover_dm: Option<BTreeSet<Tuple>>,
}

impl ReasonedSetting {
    /// Run the reasoner under `budget` and prepare the minimized setting for
    /// `engine`, costing planned join orders from `stats_db` clamped by the
    /// chase-derived cardinality caps.
    pub fn prepare(
        setting: &Setting,
        query: &Query,
        stats_db: &Database,
        engine: Engine,
        budget: &ric_complete::SearchBudget,
    ) -> Result<ReasonedSetting, RcError> {
        Self::prepare_probed(setting, query, stats_db, engine, budget, Probe::disabled())
    }

    /// [`ReasonedSetting::prepare`] with telemetry (`reason.*` counters).
    pub fn prepare_probed(
        setting: &Setting,
        query: &Query,
        stats_db: &Database,
        engine: Engine,
        budget: &ric_complete::SearchBudget,
        probe: Probe<'_>,
    ) -> Result<ReasonedSetting, RcError> {
        let facts = ric_reason::reason_probed(setting, query, budget, probe);
        let mut stats = CappedStats::new(stats_db);
        for cap in &facts.caps {
            stats = match cap.kind {
                CapKind::Rows { limit } => stats.cap_rows(cap.rel, limit),
                CapKind::DistinctAt { col, limit } => stats.cap_distinct(cap.rel, col, limit),
            };
        }
        let prepared =
            PreparedSetting::prepare_with_stats(facts.minimized_setting(setting), &stats, engine)?;
        let cover_dm = facts.cover.map(|c| match &setting.v.ccs[c.cc].rhs {
            ric_constraints::CcRhs::Master(p) => p.eval(&setting.dm),
            // Cover facts are only derived for master right-hand sides.
            ric_constraints::CcRhs::Empty => BTreeSet::new(),
        });
        Ok(ReasonedSetting {
            setting: setting.clone(),
            query: query.clone(),
            facts,
            prepared,
            cover_dm,
        })
    }

    /// The certified static artifact this preparation is built on.
    pub fn facts(&self) -> &StaticFacts {
        &self.facts
    }

    /// The query the facts were derived for.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// RCDP against the reasoned preparation: static verdicts first, then
    /// the search over the minimized setting.
    pub fn rcdp_probed(
        &self,
        db: &Database,
        budget: &ric_complete::SearchBudget,
        probe: Probe<'_>,
    ) -> Result<Verdict, RcError> {
        // The input contract is checked against the FULL constraint set, so
        // reasoned and unreasoned paths accept exactly the same inputs.
        if !self.setting.partially_closed(db)? {
            return Err(RcError::NotPartiallyClosed);
        }
        if self.facts.statically_complete {
            probe.count("reason.static_verdict", 1);
            probe.note("rcdp.outcome", || "complete".into());
            return Ok(Verdict::Complete);
        }
        if let Some(p_dm) = &self.cover_dm {
            // Q ⊆ body(φ_j) ⊆ p_j(R_m) is certified, so on every legal
            // extension Q(D ∪ ΔD) ⊆ p_j(D_m); if p_j(D_m) ⊆ Q(D) already,
            // monotonicity closes the loop: Q(D ∪ ΔD) = Q(D).
            let q_ans = self.query.eval(db)?;
            if p_dm.is_subset(&q_ans) {
                probe.count("reason.cover_hit", 1);
                probe.note("rcdp.outcome", || "complete".into());
                return Ok(Verdict::Complete);
            }
            probe.count("reason.cover_miss", 1);
        }
        self.prepared.rcdp_probed(&self.query, db, budget, probe)
    }

    /// RCQP through the minimized preparation (no static shortcut: RCQP's
    /// existential form is not decided by the RCDP facts).
    pub fn rcqp_probed(
        &self,
        budget: &ric_complete::SearchBudget,
        probe: Probe<'_>,
    ) -> Result<QueryVerdict, RcError> {
        self.prepared.rcqp_probed(&self.query, budget, probe)
    }
}

/// [`crate::try_rcdp`] against a [`ReasonedSetting`]: certified static
/// verdicts short-circuit the search, everything else runs over the
/// minimized constraint set.
pub fn try_rcdp_static(
    reasoned: &ReasonedSetting,
    db: &Database,
    budget: &ric_complete::SearchBudget,
) -> Result<Verdict, DecisionError> {
    try_rcdp_static_probed(reasoned, db, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcdp_static`] with a telemetry probe attached.
pub fn try_rcdp_static_probed(
    reasoned: &ReasonedSetting,
    db: &Database,
    budget: &ric_complete::SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<Verdict>, DecisionError> {
    isolate(probe, |p| reasoned.rcdp_probed(db, budget, p))
}

/// [`crate::try_rcqp`] against a [`ReasonedSetting`].
pub fn try_rcqp_static(
    reasoned: &ReasonedSetting,
    budget: &ric_complete::SearchBudget,
) -> Result<QueryVerdict, DecisionError> {
    try_rcqp_static_probed(reasoned, budget, Probe::disabled()).map(|d| d.verdict)
}

/// [`try_rcqp_static`] with a telemetry probe attached.
pub fn try_rcqp_static_probed(
    reasoned: &ReasonedSetting,
    budget: &ric_complete::SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<QueryVerdict>, DecisionError> {
    isolate(probe, |p| reasoned.rcqp_probed(budget, p))
}

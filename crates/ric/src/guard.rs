//! Panic-isolated decision entry points.
//!
//! The deciders promise "sound or `Unknown`" for every *anticipated* limit —
//! budgets, deadlines, cancellation. A defect (ours or in a user-supplied
//! [`Sink`]) is not anticipated: it panics. The `try_*` functions here wrap
//! each decision in [`std::panic::catch_unwind`] so a panic surfaces as a
//! typed [`DecisionError::Panic`] instead of unwinding through the caller —
//! the contract an embedding service (one decision per request) needs.
//!
//! To aid post-mortems, each `try_*` call tees telemetry into a private
//! [`Collector`] *before* the caller's sink, and a `Panic` error carries the
//! decision-path notes recorded up to the point of the panic — even when the
//! caller's own sink is the component that panicked.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ric_complete::{
    rcdp_fingerprint, rcdp_guarded, rcdp_resumed_guarded, rcqp_fingerprint, rcqp_guarded,
    rcqp_resumed_guarded, Checkpoint, CheckpointError, DecisionKind, Guard, Query, QueryVerdict,
    RcError, SearchBudget, Setting, Verdict,
};
use ric_data::Database;
use ric_telemetry::{Collector, Explain, Probe, Sink, TeeSink, TraceState};

/// A verdict together with the structured [`Explain`] artifact rebuilt from
/// the decision's own trace: the span tree (single root, every span closed),
/// summed counters, gauges, notes (including the `explain.*` frontier notes
/// for `Unknown`), and any cooperative interrupts.
///
/// Every probed/guarded `try_*` entry point returns one of these; the plain
/// [`try_rcdp`]/[`try_rcqp`] wrappers discard the explanation and hand back
/// the bare verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct Decision<T> {
    /// The decider's verdict, bit-identical to the unprobed run.
    pub verdict: T,
    /// What the search did and why it stopped.
    pub explain: Explain,
}

/// Everything that can stop a `try_*` decision from returning a verdict.
///
/// A verdict of `Unknown` is *not* an error — budgets, deadlines, and
/// cancellation all degrade to `Unknown` inside the `Ok` channel. This type
/// covers the two genuinely exceptional cases: a typed decider error
/// ([`RcError`]) and a panic caught at the facade boundary.
#[derive(Clone, PartialEq, Debug)]
pub enum DecisionError {
    /// The decider returned a typed error (bad program, schema mismatch, …).
    Rc(RcError),
    /// The decision panicked; the panic did not cross the facade.
    Panic {
        /// The panic payload, when it was a string (the common case).
        message: String,
        /// Telemetry decision-path notes recorded before the panic.
        notes: Vec<String>,
    },
    /// Static analysis found Error-level diagnostics; the decision never
    /// started. The full [`AnalysisReport`](ric_analysis::AnalysisReport)
    /// is attached — `report.errors()` lists what must be fixed.
    Rejected(Box<ric_analysis::AnalysisReport>),
    /// A prior [`Checkpoint`] handed to a `try_*_resumed` entry point does
    /// not belong to this decision (wrong schema version, wrong decision
    /// kind, or a fingerprint mismatch); the decision never started.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for DecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionError::Rc(e) => write!(f, "{e}"),
            DecisionError::Panic { message, .. } => {
                write!(f, "decision panicked: {message}")
            }
            DecisionError::Rejected(report) => {
                write!(f, "setting rejected by static analysis:")?;
                for d in report.errors() {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            DecisionError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for DecisionError {}

impl From<RcError> for DecisionError {
    fn from(e: RcError) -> Self {
        DecisionError::Rc(e)
    }
}

impl From<CheckpointError> for DecisionError {
    fn from(e: CheckpointError) -> Self {
        DecisionError::Checkpoint(e)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn isolate<T>(
    probe: Probe<'_>,
    run: impl FnOnce(Probe<'_>) -> Result<T, RcError>,
) -> Result<Decision<T>, DecisionError> {
    // The collector records first so the decision path survives even when
    // the caller's sink is the panicking component.
    let collector = Collector::new();
    let tee = TeeSink::new(Some(&collector), probe.sink());
    // The decision runs traced against the caller's trace state when one is
    // attached (ids stay consistent in the caller's own stream) or a fresh
    // one otherwise, so the collector always sees a rebuildable span tree.
    let fresh = TraceState::new();
    let trace = probe.trace().unwrap_or(&fresh);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let p = Probe::attached(&tee).with_trace(trace);
        let root = p.span("decision");
        let out = run(p);
        drop(root);
        out
    }));
    // Flush buffered sinks on every exit — including the panic path, where
    // the buffered tail is exactly the evidence a post-mortem needs. The
    // flush itself is isolated too: a sink that panics while flushing must
    // not replace (or mask) the decision's own outcome.
    let _ = catch_unwind(AssertUnwindSafe(|| Sink::flush(&tee)));
    match result {
        Ok(inner) => {
            let verdict = inner.map_err(DecisionError::Rc)?;
            let explain = Explain::from_events(&collector.events()).unwrap_or_else(|e| {
                unreachable!(
                    "the root span wraps the whole decision, so the trace is well-formed: {e}"
                )
            });
            Ok(Decision { verdict, explain })
        }
        Err(payload) => Err(DecisionError::Panic {
            message: panic_message(payload),
            notes: collector
                .report()
                .notes
                .iter()
                .flat_map(|(name, texts)| texts.iter().map(move |text| format!("{name}: {text}")))
                .collect(),
        }),
    }
}

/// [`rcdp`](fn@ric_complete::rcdp), panic-isolated. Never panics: a panic
/// anywhere inside the decision (or an attached sink) becomes
/// [`DecisionError::Panic`].
pub fn try_rcdp(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, DecisionError> {
    try_rcdp_guarded(
        setting,
        query,
        db,
        budget,
        &Guard::new(budget),
        Probe::disabled(),
    )
    .map(|d| d.verdict)
}

/// [`try_rcdp`] with a telemetry probe attached; the verdict arrives inside
/// a [`Decision`] carrying the structured [`Explain`].
pub fn try_rcdp_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<Verdict>, DecisionError> {
    try_rcdp_guarded(setting, query, db, budget, &Guard::new(budget), probe)
}

/// [`try_rcdp`] with an explicit [`Guard`] (deadline, [`CancelToken`],
/// fault plan) and a telemetry probe.
///
/// [`CancelToken`]: ric_complete::CancelToken
pub fn try_rcdp_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Decision<Verdict>, DecisionError> {
    isolate(probe, |p| {
        rcdp_guarded(setting, query, db, budget, guard, p)
    })
}

/// A [`Decision`] plus the [`Checkpoint`] to resume from, when the decision
/// stopped on a resumable budget limit (valuation/candidate budget, deadline,
/// or cancellation). `checkpoint` is `None` when the verdict is conclusive or
/// the stop is not resumable (pool bounds, unsupported fragments).
///
/// Feed the checkpoint back — serialized through [`Checkpoint::to_json`] and
/// [`Checkpoint::from_json_str`] if it crossed a process boundary — as the
/// `prior` of the next installment. The resume invariant (DESIGN.md §10): a
/// decision completed in K installments with non-decreasing budgets returns
/// the same verdict, witness, and search counters as one uninterrupted run
/// at the final budget, on the same engine and worker count.
#[derive(Clone, PartialEq, Debug)]
pub struct Resumed<T> {
    /// The installment's verdict and explanation.
    pub decision: Decision<T>,
    /// Where to pick up, if the search was interrupted resumably.
    pub checkpoint: Option<Checkpoint>,
}

/// [`try_rcdp`] that can pick up where a prior interrupted run left off.
///
/// Pass `None` for a fresh decision; pass the [`Checkpoint`] from a previous
/// [`Resumed`] to skip the work that installment already committed. A prior
/// checkpoint from a different decision (or an unknown schema version) is
/// rejected up front with [`DecisionError::Checkpoint`].
pub fn try_rcdp_resumed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    prior: Option<&Checkpoint>,
) -> Result<(Verdict, Option<Checkpoint>), DecisionError> {
    try_rcdp_resumed_guarded(
        setting,
        query,
        db,
        budget,
        &Guard::new(budget),
        Probe::disabled(),
        prior,
    )
    .map(|r| (r.decision.verdict, r.checkpoint))
}

/// [`try_rcdp_resumed`] with a telemetry probe attached.
pub fn try_rcdp_resumed_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<Resumed<Verdict>, DecisionError> {
    try_rcdp_resumed_guarded(
        setting,
        query,
        db,
        budget,
        &Guard::new(budget),
        probe,
        prior,
    )
}

/// [`try_rcdp_resumed`] with an explicit [`Guard`] and a telemetry probe.
pub fn try_rcdp_resumed_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<Resumed<Verdict>, DecisionError> {
    if let Some(cp) = prior {
        cp.validate(DecisionKind::Rcdp, rcdp_fingerprint(setting, query, db))?;
    }
    let d = isolate(probe, |p| {
        rcdp_resumed_guarded(setting, query, db, budget, guard, p, prior)
    })?;
    Ok(Resumed {
        checkpoint: d.verdict.checkpoint,
        decision: Decision {
            verdict: d.verdict.verdict,
            explain: d.explain,
        },
    })
}

/// [`rcqp`](fn@ric_complete::rcqp), panic-isolated. Never panics.
pub fn try_rcqp(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
) -> Result<QueryVerdict, DecisionError> {
    try_rcqp_guarded(
        setting,
        query,
        budget,
        &Guard::new(budget),
        Probe::disabled(),
    )
    .map(|d| d.verdict)
}

/// [`try_rcqp`] with a telemetry probe attached; the verdict arrives inside
/// a [`Decision`] carrying the structured [`Explain`].
pub fn try_rcqp_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Decision<QueryVerdict>, DecisionError> {
    try_rcqp_guarded(setting, query, budget, &Guard::new(budget), probe)
}

/// [`try_rcqp`] with an explicit [`Guard`] and a telemetry probe.
pub fn try_rcqp_guarded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Decision<QueryVerdict>, DecisionError> {
    isolate(probe, |p| rcqp_guarded(setting, query, budget, guard, p))
}

/// [`try_rcqp`] that accepts (and may return) a [`Checkpoint`].
///
/// The RCQP frontier is coarse — [`Frontier::Restart`] — so a resumed
/// installment re-runs the search from the top at the new budget; the
/// checkpoint still carries the attempt count, ticks spent, and the
/// fingerprint binding it to this `(setting, query)` pair.
///
/// [`Frontier::Restart`]: ric_complete::Frontier::Restart
pub fn try_rcqp_resumed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    prior: Option<&Checkpoint>,
) -> Result<(QueryVerdict, Option<Checkpoint>), DecisionError> {
    try_rcqp_resumed_guarded(
        setting,
        query,
        budget,
        &Guard::new(budget),
        Probe::disabled(),
        prior,
    )
    .map(|r| (r.decision.verdict, r.checkpoint))
}

/// [`try_rcqp_resumed`] with a telemetry probe attached.
pub fn try_rcqp_resumed_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<Resumed<QueryVerdict>, DecisionError> {
    try_rcqp_resumed_guarded(setting, query, budget, &Guard::new(budget), probe, prior)
}

/// [`try_rcqp_resumed`] with an explicit [`Guard`] and a telemetry probe.
pub fn try_rcqp_resumed_guarded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<Resumed<QueryVerdict>, DecisionError> {
    if let Some(cp) = prior {
        cp.validate(DecisionKind::Rcqp, rcqp_fingerprint(setting, query))?;
    }
    let d = isolate(probe, |p| {
        rcqp_resumed_guarded(setting, query, budget, guard, p, prior)
    })?;
    Ok(Resumed {
        checkpoint: d.verdict.checkpoint,
        decision: Decision {
            verdict: d.verdict.verdict,
            explain: d.explain,
        },
    })
}

//! Plan executors: run a [`PreparedPlan`] / [`DeltaPlans`] against any
//! [`TupleStore`].
//!
//! The executor is a direct loop over the compiled step list: each step
//! either scans its relation or probes the pre-resolved column, matches the
//! tuple against the step's arena'd column `Action`s (constants, equality
//! checks against bound slots, fresh binds), runs the inequality checks
//! pinned to this step, and recurses. The only mutable state is the binding
//! array inside a reusable [`PlanScratch`]; a candidate tuple that fails
//! mid-match undoes exactly the binds it performed (a second pass over the
//! same action slice — no allocation).
//!
//! Answer-set equality with the greedy evaluator is by construction: both
//! enumerate exactly the valuations satisfying every atom and inequality,
//! and answers land in a `BTreeSet`, so join order is unobservable.

use crate::planner::{Action, DeltaPlans, NeqCheck, PreparedPlan, ProbeChoice, Src};
use ric_data::{Overlay, Tuple, TupleStore, Value};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Reusable per-thread execution state: the variable binding array.
///
/// Executions borrow it mutably, so one scratch serves any number of plans
/// sequentially. Cross-thread sharing is not needed — each worker keeps its
/// own (see [`with_scratch`]).
#[derive(Default, Debug)]
pub struct PlanScratch {
    binding: Vec<Option<Value>>,
}

impl PlanScratch {
    fn enter(&mut self, n_vars: usize) -> &mut [Option<Value>] {
        self.binding.clear();
        self.binding.resize(n_vars, None);
        &mut self.binding
    }
}

/// Run `f` with a thread-local [`PlanScratch`] — the zero-setup path for
/// callers (like the constraint checker) that are themselves called from
/// many threads. Re-entrant calls fall back to a fresh scratch.
pub fn with_scratch<R>(f: impl FnOnce(&mut PlanScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: RefCell<PlanScratch> = RefCell::new(PlanScratch::default());
    }
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut PlanScratch::default()),
    })
}

fn src_value<'a>(s: &'a Src, binding: &'a [Option<Value>]) -> &'a Value {
    match s {
        Src::Const(c) => c,
        Src::Var(v) => binding[*v as usize]
            .as_ref()
            .unwrap_or_else(|| unreachable!("planner pins checks after both sides are bound")),
    }
}

fn neqs_hold(checks: &[NeqCheck], binding: &[Option<Value>]) -> bool {
    checks
        .iter()
        .all(|c| src_value(&c.l, binding) != src_value(&c.r, binding))
}

impl PreparedPlan {
    /// The head tuple of a complete binding.
    fn head_tuple(&self, binding: &[Option<Value>]) -> Tuple {
        Tuple::new(self.head.iter().map(|s| src_value(s, binding).clone()))
    }

    /// Match `tuple` against step `k`'s actions and pinned inequalities,
    /// recurse on success, and undo exactly the binds performed. Returns
    /// `false` iff the visitor below requested a stop.
    fn match_and_descend<S: TupleStore>(
        &self,
        store: &S,
        k: usize,
        tuple: &Tuple,
        binding: &mut [Option<Value>],
        f: &mut dyn FnMut(&[Option<Value>]) -> bool,
    ) -> bool {
        let step = &self.steps[k];
        let (start, len) = step.actions;
        let actions = &self.actions[start as usize..(start + len) as usize];
        if tuple.arity() != actions.len() {
            return true;
        }
        let mut bound = 0usize;
        let mut ok = true;
        for (col, act) in actions.iter().enumerate() {
            match act {
                Action::Const(c) => {
                    if tuple.get(col) != c {
                        ok = false;
                        break;
                    }
                }
                Action::Check(slot) => {
                    if binding[*slot as usize].as_ref() != Some(tuple.get(col)) {
                        ok = false;
                        break;
                    }
                }
                Action::Bind(slot) => {
                    binding[*slot as usize] = Some(tuple.get(col).clone());
                    bound += 1;
                }
            }
        }
        if ok {
            let (ns, nl) = step.neqs;
            ok = neqs_hold(&self.neqs[ns as usize..(ns + nl) as usize], binding);
        }
        let keep_going = if ok {
            self.step(store, k + 1, binding, f)
        } else {
            true
        };
        if bound > 0 {
            // Undo pass: reset the first `bound` Bind slots (actions execute
            // in column order, so these are exactly the binds performed).
            let mut undone = 0usize;
            for act in actions {
                if let Action::Bind(slot) = act {
                    binding[*slot as usize] = None;
                    undone += 1;
                    if undone == bound {
                        break;
                    }
                }
            }
        }
        keep_going
    }

    /// Execute from step `k` onward. Returns `false` iff `f` stopped early.
    fn step<S: TupleStore>(
        &self,
        store: &S,
        k: usize,
        binding: &mut [Option<Value>],
        f: &mut dyn FnMut(&[Option<Value>]) -> bool,
    ) -> bool {
        if k == self.steps.len() {
            return f(binding);
        }
        let step = &self.steps[k];
        match &step.probe {
            ProbeChoice::Scan => store.scan(step.rel, &mut |t| {
                self.match_and_descend(store, k, t, binding, f)
            }),
            ProbeChoice::ConstKey { col, key } => {
                store.probe(step.rel, *col as usize, key, &mut |t| {
                    self.match_and_descend(store, k, t, binding, f)
                })
            }
            ProbeChoice::VarKey { col, var } => {
                let key = binding[*var as usize]
                    .clone()
                    .unwrap_or_else(|| unreachable!("planner probes only earlier-bound slots"));
                store.probe(step.rel, *col as usize, &key, &mut |t| {
                    self.match_and_descend(store, k, t, binding, f)
                })
            }
        }
    }

    /// Visit every answer (head tuple) of the plan over `store`; stop when
    /// `f` returns `false`. Returns `false` iff stopped early.
    pub fn for_each_answer<S: TupleStore>(
        &self,
        store: &S,
        scratch: &mut PlanScratch,
        f: &mut dyn FnMut(Tuple) -> bool,
    ) -> bool {
        debug_assert!(!self.pinned, "delta plans execute through DeltaPlans");
        let binding = scratch.enter(self.n_vars as usize);
        self.step(store, 0, binding, &mut |b| f(self.head_tuple(b)))
    }

    /// Evaluate the plan and insert every answer into `out`.
    pub fn eval_into<S: TupleStore>(
        &self,
        store: &S,
        scratch: &mut PlanScratch,
        out: &mut BTreeSet<Tuple>,
    ) {
        self.for_each_answer(store, scratch, &mut |t| {
            out.insert(t);
            true
        });
    }

    /// Boolean evaluation: does the plan produce at least one answer?
    pub fn holds<S: TupleStore>(&self, store: &S, scratch: &mut PlanScratch) -> bool {
        !self.for_each_answer(store, scratch, &mut |_| false)
    }

    /// Execute one pin plan over `ov`: step 0 iterates novel Δ-tuples, the
    /// remaining steps join over the full overlay. Returns `false` iff `f`
    /// stopped early.
    fn for_each_delta_answer(
        &self,
        ov: &Overlay<'_>,
        scratch: &mut PlanScratch,
        f: &mut dyn FnMut(Tuple) -> bool,
    ) -> bool {
        debug_assert!(self.pinned, "not a delta pin plan");
        let binding = scratch.enter(self.n_vars as usize);
        let Some(step0) = self.steps.first() else {
            return true; // atomless: no pins, nothing novel to derive.
        };
        let mut g = |b: &[Option<Value>]| f(self.head_tuple(b));
        ov.for_each_novel(step0.rel, &mut |t| {
            self.match_and_descend(ov, 0, t, binding, &mut g)
        })
    }
}

impl DeltaPlans {
    /// Every answer derivable *using at least one novel Δ-tuple* — the
    /// compiled mirror of `eval_tableau_delta` — inserted into `out`.
    pub fn eval_delta_into(
        &self,
        ov: &Overlay<'_>,
        scratch: &mut PlanScratch,
        out: &mut BTreeSet<Tuple>,
    ) {
        for plan in self.pins.iter() {
            plan.for_each_delta_answer(ov, scratch, &mut |t| {
                out.insert(t);
                true
            });
        }
    }

    /// Are all Δ-derived answers contained in `rhs`? Exits on the first
    /// answer outside `rhs` without materializing the answer set — the
    /// decider hot path for containment-constraint bodies.
    pub fn delta_answers_within(
        &self,
        ov: &Overlay<'_>,
        scratch: &mut PlanScratch,
        rhs: &BTreeSet<Tuple>,
    ) -> bool {
        for plan in self.pins.iter() {
            let complete = plan.for_each_delta_answer(ov, scratch, &mut |t| rhs.contains(&t));
            if !complete {
                return false;
            }
        }
        true
    }
}

//! The cost-based planner: tableau in, [`PreparedPlan`] out.
//!
//! Plan choice is a pure function of the tableau and the statistics snapshot
//! it is given — no clocks, no randomness — so preparing the same query
//! against the same stats always yields the same plan, and the compiled
//! artifact can be shared across threads (`PreparedPlan` is `Send + Sync`).
//!
//! ## Cost model
//!
//! Greedy System-R-lite over [`RelStats`]: at each step pick the unplaced
//! atom with the smallest estimated output cardinality
//!
//! ```text
//! est(atom | bound) = rows(rel) × Π_{col bound or constant} 1 / distinct(col)
//! ```
//!
//! ties broken by original atom index for determinism. The plan's recorded
//! [`PreparedPlan::cost`] is the sum of running intermediate cardinalities
//! (`Σ_k Π_{j≤k} est_j`), the figure the `plan.cost` telemetry counter
//! reports. When *no* relation of the body has statistics the planner
//! instead simulates the greedy evaluator's most-bound-first order
//! statically (after a step, all of its variables are bound, so the dynamic
//! and static simulations agree) and marks the plan as a
//! [`PreparedPlan::fallback`].

use ric_data::{RelId, RelStats, TupleStore, Value};
use ric_query::tableau::Tableau;
use ric_query::Term;

/// Where plan-time statistics come from. Blanket-implemented for every
/// [`TupleStore`], so a `Database` (or an `Overlay`) is a provider as-is.
pub trait StatsProvider {
    /// Statistics of one relation. Estimates only: they steer join order,
    /// never answers.
    fn rel_stats(&self, rel: RelId) -> RelStats;
}

impl<S: TupleStore> StatsProvider for S {
    fn rel_stats(&self, rel: RelId) -> RelStats {
        self.stats(rel)
    }
}

/// The "no statistics" provider: every relation reports empty stats, forcing
/// the static fallback order.
pub struct NoStats;

impl StatsProvider for NoStats {
    fn rel_stats(&self, _rel: RelId) -> RelStats {
        RelStats::empty()
    }
}

/// What to do with one column of a step's tuple, precompiled.
#[derive(Clone, Debug)]
pub(crate) enum Action {
    /// The column must equal this constant.
    Const(Value),
    /// The column must equal the already-bound variable slot.
    Check(u32),
    /// First occurrence of the variable along the binding order: bind it.
    Bind(u32),
}

/// The pre-resolved access path of one step.
#[derive(Clone, Debug)]
pub(crate) enum ProbeChoice {
    /// No column is bound before this step: full scan.
    Scan,
    /// Probe on a constant key.
    ConstKey { col: u32, key: Value },
    /// Probe on the value of an earlier-bound variable slot.
    VarKey { col: u32, var: u32 },
}

/// One side of a pinned inequality or one head column.
#[derive(Clone, Debug)]
pub(crate) enum Src {
    Const(Value),
    Var(u32),
}

/// An inequality check pinned to the earliest step binding both sides.
#[derive(Clone, Debug)]
pub(crate) struct NeqCheck {
    pub(crate) l: Src,
    pub(crate) r: Src,
}

/// One join step of a compiled plan.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    pub(crate) rel: RelId,
    /// Original tableau atom index (for explain output).
    pub(crate) atom: u32,
    /// `actions[start..start+len]` in the plan's action arena.
    pub(crate) actions: (u32, u32),
    /// `neqs[start..start+len]` in the plan's inequality arena.
    pub(crate) neqs: (u32, u32),
    pub(crate) probe: ProbeChoice,
    /// Estimated output cardinality of this step (explain / cost).
    pub(crate) est: f64,
}

/// A tableau body compiled to a fixed binding order with pre-resolved index
/// choices, arena-backed column actions, and pinned inequality checks.
///
/// Built once by [`plan_tableau`] / [`plan_tableau_delta`]; executed many
/// times through the methods in [`crate::exec`] with a reusable
/// [`PlanScratch`](crate::PlanScratch) — steady state, an execution
/// allocates nothing beyond the answers it reports.
#[derive(Clone, Debug)]
pub struct PreparedPlan {
    pub(crate) n_vars: u32,
    pub(crate) steps: Box<[Step]>,
    /// Arena: every step's column actions, contiguous, in step order.
    pub(crate) actions: Box<[Action]>,
    /// Arena: every step's pinned inequality checks, contiguous, in step
    /// order.
    pub(crate) neqs: Box<[NeqCheck]>,
    pub(crate) head: Box<[Src]>,
    /// Step 0 is bound to novel Δ-tuples instead of probed (delta plans).
    pub(crate) pinned: bool,
    cost: f64,
    fallback: bool,
}

impl PreparedPlan {
    /// Total estimated cost (sum of running intermediate cardinalities).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Did the planner fall back to the static most-bound-first order
    /// because no body relation had statistics?
    pub fn fallback(&self) -> bool {
        self.fallback
    }

    /// The chosen join order, as original tableau atom indexes.
    pub fn join_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.atom as usize).collect()
    }

    /// Per-step `(original atom index, relation, estimated rows)`.
    pub fn step_estimates(&self) -> Vec<(usize, RelId, f64)> {
        self.steps
            .iter()
            .map(|s| (s.atom as usize, s.rel, s.est))
            .collect()
    }

    /// One-line human-readable plan: join order with access paths and
    /// per-step estimates. `rel_name` maps relation ids to display names.
    pub fn render(&self, rel_name: impl Fn(RelId) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            let access = match &s.probe {
                _ if self.pinned && i == 0 => "delta".to_string(),
                ProbeChoice::Scan => "scan".to_string(),
                ProbeChoice::ConstKey { col, .. } => format!("probe(c{col}=const)"),
                ProbeChoice::VarKey { col, var } => format!("probe(c{col}=v{var})"),
            };
            let _ = write!(
                out,
                "{}[a{}] {} est={:.1}",
                rel_name(s.rel),
                s.atom,
                access,
                s.est
            );
        }
        let _ = write!(
            out,
            " | cost={:.1}{}",
            self.cost,
            if self.fallback {
                " (static fallback)"
            } else {
                ""
            }
        );
        out
    }
}

/// The incremental (delta) compilation of one tableau: one [`PreparedPlan`]
/// per *pin*, each forcing the pinned atom — bound to novel Δ-tuples — as
/// step 0. Mirrors `eval_tableau_delta`'s union-over-pins semantics.
#[derive(Clone, Debug)]
pub struct DeltaPlans {
    pub(crate) pins: Box<[PreparedPlan]>,
}

impl DeltaPlans {
    /// Total estimated cost across all pin plans.
    pub fn cost(&self) -> f64 {
        self.pins.iter().map(PreparedPlan::cost).sum()
    }

    /// Did any pin plan fall back to the static order?
    pub fn fallback(&self) -> bool {
        self.pins.iter().any(PreparedPlan::fallback)
    }

    /// Number of pin plans (= number of tableau atoms).
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// No atoms, no pins, no delta answers.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Render every pin plan, one per line.
    pub fn render(&self, rel_name: impl Fn(RelId) -> String + Copy) -> String {
        self.pins
            .iter()
            .map(|p| p.render(rel_name))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Compile a full-evaluation plan for `t` against a statistics snapshot.
pub fn plan_tableau(t: &Tableau, stats: &dyn StatsProvider) -> PreparedPlan {
    compile(t, stats, None)
}

/// Compile the delta-evaluation plans for `t` (one per pinned atom) against
/// a statistics snapshot — normally the *base* database's, since the delta
/// is a handful of tuples.
pub fn plan_tableau_delta(t: &Tableau, stats: &dyn StatsProvider) -> DeltaPlans {
    DeltaPlans {
        pins: (0..t.atoms.len())
            .map(|pin| compile(t, stats, Some(pin)))
            .collect(),
    }
}

fn compile(t: &Tableau, stats: &dyn StatsProvider, pin: Option<usize>) -> PreparedPlan {
    let n_atoms = t.atoms.len();
    let rel_stats: Vec<RelStats> = t.atoms.iter().map(|a| stats.rel_stats(a.rel)).collect();
    let have_stats = rel_stats.iter().any(|s| !s.is_empty());

    // --- choose the order ---------------------------------------------
    let mut order: Vec<usize> = Vec::with_capacity(n_atoms);
    let mut placed = vec![false; n_atoms];
    let mut bound = vec![false; t.n_vars as usize];
    let place = |i: usize, placed: &mut Vec<bool>, bound: &mut Vec<bool>| {
        placed[i] = true;
        for arg in &t.atoms[i].args {
            if let Term::Var(v) = arg {
                bound[v.idx()] = true;
            }
        }
    };
    if let Some(p) = pin {
        order.push(p);
        place(p, &mut placed, &mut bound);
    }
    while order.len() < n_atoms {
        let next = if have_stats {
            // Min estimated output cardinality, ties by index.
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n_atoms {
                if placed[i] {
                    continue;
                }
                let est = estimate(t, i, &rel_stats[i], &bound);
                if best.map(|(b, _)| est < b).unwrap_or(true) {
                    best = Some((est, i));
                }
            }
            best.map(|(_, i)| i)
        } else {
            // Static most-bound-first (constants count), ties by index —
            // the order the greedy evaluator would discover dynamically.
            let mut best: Option<(usize, usize)> = None;
            for (i, &is_placed) in placed.iter().enumerate() {
                if is_placed {
                    continue;
                }
                let score = t.atoms[i]
                    .args
                    .iter()
                    .filter(|a| match a {
                        Term::Const(_) => true,
                        Term::Var(v) => bound[v.idx()],
                    })
                    .count();
                if best.map(|(s, _)| score > s).unwrap_or(true) {
                    best = Some((score, i));
                }
            }
            best.map(|(_, i)| i)
        };
        let Some(i) = next else { break };
        order.push(i);
        place(i, &mut placed, &mut bound);
    }

    // --- compile the steps --------------------------------------------
    let mut actions: Vec<Action> = Vec::new();
    let mut steps: Vec<Step> = Vec::with_capacity(n_atoms);
    let mut bound_at: Vec<Option<usize>> = vec![None; t.n_vars as usize];
    let mut cost = 0.0f64;
    let mut card = 1.0f64;
    for (k, &ai) in order.iter().enumerate() {
        let atom = &t.atoms[ai];
        let st = &rel_stats[ai];
        // Access path: among columns bound *before* this step, prefer (with
        // stats) the most selective one, else the first.
        let mut probe: Option<(usize, ProbeChoice)> = None; // (distinct, choice)
        for (col, arg) in atom.args.iter().enumerate() {
            let choice = match arg {
                Term::Const(c) => Some(ProbeChoice::ConstKey {
                    col: col as u32,
                    key: c.clone(),
                }),
                Term::Var(v) if bound_at[v.idx()].is_some() => Some(ProbeChoice::VarKey {
                    col: col as u32,
                    var: v.idx() as u32,
                }),
                Term::Var(_) => None,
            };
            if let Some(choice) = choice {
                let d = st.distinct_at(col);
                let better = match &probe {
                    None => true,
                    Some((best_d, _)) => have_stats && d > *best_d,
                };
                if better {
                    probe = Some((d, choice));
                }
            }
        }
        let probe = if pin == Some(ai) && k == 0 {
            ProbeChoice::Scan // unused: the executor pins step 0 to Δ.
        } else {
            probe.map(|(_, c)| c).unwrap_or(ProbeChoice::Scan)
        };
        let est = estimate(t, ai, st, &mark_bound(t, &order[..k]));
        let start = actions.len() as u32;
        for arg in atom.args.iter() {
            match arg {
                Term::Const(c) => actions.push(Action::Const(c.clone())),
                Term::Var(v) => {
                    if bound_at[v.idx()].is_some() {
                        actions.push(Action::Check(v.idx() as u32));
                    } else {
                        bound_at[v.idx()] = Some(k);
                        actions.push(Action::Bind(v.idx() as u32));
                    }
                }
            }
        }
        let len = actions.len() as u32 - start;
        if have_stats {
            card *= est;
            cost += card;
        }
        steps.push(Step {
            rel: atom.rel,
            atom: ai as u32,
            actions: (start, len),
            neqs: (0, 0), // filled below
            probe,
            est,
        });
    }

    // --- pin the inequalities -----------------------------------------
    let mut per_step: Vec<Vec<NeqCheck>> = vec![Vec::new(); steps.len()];
    for (l, r) in &t.neqs {
        let step_of = |term: &Term| -> usize {
            match term {
                Term::Const(_) => 0,
                Term::Var(v) => bound_at[v.idx()].unwrap_or_else(|| {
                    unreachable!("tableau invariant: every variable occurs in an atom")
                }),
            }
        };
        let at = step_of(l).max(step_of(r));
        let src = |term: &Term| -> Src {
            match term {
                Term::Const(c) => Src::Const(c.clone()),
                Term::Var(v) => Src::Var(v.idx() as u32),
            }
        };
        per_step[at].push(NeqCheck {
            l: src(l),
            r: src(r),
        });
    }
    let mut neqs: Vec<NeqCheck> = Vec::new();
    for (k, checks) in per_step.into_iter().enumerate() {
        let start = neqs.len() as u32;
        let len = checks.len() as u32;
        neqs.extend(checks);
        steps[k].neqs = (start, len);
    }

    let head: Box<[Src]> = t
        .head
        .iter()
        .map(|term| match term {
            Term::Const(c) => Src::Const(c.clone()),
            Term::Var(v) => Src::Var(v.idx() as u32),
        })
        .collect();

    PreparedPlan {
        n_vars: t.n_vars,
        steps: steps.into_boxed_slice(),
        actions: actions.into_boxed_slice(),
        neqs: neqs.into_boxed_slice(),
        head,
        pinned: pin.is_some(),
        cost,
        fallback: !have_stats,
    }
}

/// `est(atom | bound)` under the uniform-selectivity model.
fn estimate(t: &Tableau, atom: usize, st: &RelStats, bound: &[bool]) -> f64 {
    let a = &t.atoms[atom];
    let mut est = st.rows as f64;
    for (col, arg) in a.args.iter().enumerate() {
        let filters = match arg {
            Term::Const(_) => true,
            Term::Var(v) => bound[v.idx()],
        };
        if filters {
            est *= st.selectivity(col);
        }
    }
    est
}

/// The bound-variable set after placing `prefix` (for per-step estimates).
fn mark_bound(t: &Tableau, prefix: &[usize]) -> Vec<bool> {
    let mut bound = vec![false; t.n_vars as usize];
    for &i in prefix {
        for arg in &t.atoms[i].args {
            if let Term::Var(v) = arg {
                bound[v.idx()] = true;
            }
        }
    }
    bound
}

/// A [`StatsProvider`] decorator that clamps rows and per-column distinct
/// counts to externally derived upper bounds — e.g. the chase-derived
/// cardinality caps of the symbolic reasoner, which bound *every* legal
/// database through the fixed master data. Like all statistics, caps are
/// advisory: they steer join order and never change answers. Because the
/// caps hold for every legal extension, a plan built against capped stats
/// cannot be invalidated by database growth past the master bounds.
pub struct CappedStats<'a, S: StatsProvider + ?Sized> {
    inner: &'a S,
    rows: std::collections::BTreeMap<RelId, usize>,
    distinct: std::collections::BTreeMap<(RelId, usize), usize>,
}

impl<'a, S: StatsProvider + ?Sized> CappedStats<'a, S> {
    /// Wrap a provider with no caps.
    pub fn new(inner: &'a S) -> Self {
        CappedStats {
            inner,
            rows: std::collections::BTreeMap::new(),
            distinct: std::collections::BTreeMap::new(),
        }
    }

    /// Clamp the row count of `rel` to at most `limit` (tightest cap wins).
    pub fn cap_rows(mut self, rel: RelId, limit: usize) -> Self {
        let slot = self.rows.entry(rel).or_insert(limit);
        *slot = (*slot).min(limit);
        self
    }

    /// Clamp the distinct count of `rel`'s column `col` (tightest cap wins).
    pub fn cap_distinct(mut self, rel: RelId, col: usize, limit: usize) -> Self {
        let slot = self.distinct.entry((rel, col)).or_insert(limit);
        *slot = (*slot).min(limit);
        self
    }

    /// Number of caps installed.
    pub fn len(&self) -> usize {
        self.rows.len() + self.distinct.len()
    }

    /// Are there no caps?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.distinct.is_empty()
    }
}

impl<S: StatsProvider + ?Sized> StatsProvider for CappedStats<'_, S> {
    fn rel_stats(&self, rel: RelId) -> RelStats {
        let mut st = self.inner.rel_stats(rel);
        if let Some(&cap) = self.rows.get(&rel) {
            st.rows = st.rows.min(cap);
        }
        for (col, d) in st.distinct.iter_mut().enumerate() {
            if let Some(&cap) = self.distinct.get(&(rel, col)) {
                *d = (*d).min(cap);
            }
        }
        st
    }
}

#[cfg(test)]
mod capped_tests {
    use super::*;

    struct Fixed(RelStats);
    impl StatsProvider for Fixed {
        fn rel_stats(&self, _rel: RelId) -> RelStats {
            self.0.clone()
        }
    }

    #[test]
    fn caps_clamp_rows_and_distinct_and_tightest_wins() {
        let inner = Fixed(RelStats {
            rows: 100,
            distinct: vec![50, 80],
        });
        let capped = CappedStats::new(&inner)
            .cap_rows(RelId(0), 40)
            .cap_rows(RelId(0), 60)
            .cap_distinct(RelId(0), 1, 10);
        assert_eq!(capped.len(), 2);
        let st = capped.rel_stats(RelId(0));
        assert_eq!(st.rows, 40);
        assert_eq!(st.distinct, vec![50, 10]);
        // Uncapped relations pass through untouched.
        let st1 = capped.rel_stats(RelId(1));
        assert_eq!(st1.rows, 100);
        assert_eq!(st1.distinct, vec![50, 80]);
    }

    #[test]
    fn empty_caps_are_the_identity() {
        let inner = Fixed(RelStats {
            rows: 7,
            distinct: vec![3],
        });
        let capped = CappedStats::new(&inner);
        assert!(capped.is_empty());
        let st = capped.rel_stats(RelId(2));
        assert_eq!(st.rows, 7);
        assert_eq!(st.distinct, vec![3]);
    }
}

//! # `ric-plan` — cost-based, prepared, compiled query plans
//!
//! The greedy evaluator in `ric-query` re-derives its join order ("most-bound
//! atom first") for every call — and the deciders of `ric-complete` call it
//! once per containment-constraint body per candidate valuation, millions of
//! times per decision. This crate moves that choice out of the loop: a
//! [`Tableau`](ric_query::tableau::Tableau) is compiled **once** into a [`PreparedPlan`] with
//!
//! * a **fixed binding order** chosen by a cost model over per-relation
//!   [`RelStats`](ric_data::RelStats) (cardinality × product of per-column selectivities,
//!   System-R style, greedy);
//! * **pre-resolved index choices** — each step knows statically whether it
//!   scans or probes, on which column, and with which key (a constant or an
//!   earlier-bound variable slot);
//! * **inequality checks pinned** to the earliest step at which both sides
//!   are bound, instead of re-scanning the whole `≠`-list at every frame;
//! * **zero per-candidate allocation** — the per-column actions are
//!   precompiled into one contiguous arena, the set of variables each step
//!   binds is fixed by the order (so undo is a static slot list, not a
//!   freshly allocated vector), and the binding array lives in a reusable
//!   [`PlanScratch`].
//!
//! Plans are *estimates-in, exactness-out*: statistics steer only the join
//! order, so a stale, empty, or adversarially wrong [`RelStats`](ric_data::RelStats) can change
//! timing but never answers. When no statistics are available the planner
//! falls back to a static simulation of the greedy most-bound-first order
//! ([`PreparedPlan::fallback`]), which is what the indexed engine would have
//! done dynamically.
//!
//! [`DeltaPlans`] is the incremental variant mirroring
//! [`eval_tableau_delta`](ric_query::eval::eval_tableau_delta): one plan per
//! *pin*, each forcing the pinned atom (bound to novel Δ-tuples) first.
//! [`DeltaPlans::delta_answers_within`] is the decider hot path — it checks
//! every Δ-derived answer against a right-hand-side set and exits on the
//! first violation, without materializing the answer set.

pub mod exec;
pub mod planner;

pub use exec::PlanScratch;
pub use planner::{
    plan_tableau, plan_tableau_delta, CappedStats, DeltaPlans, PreparedPlan, StatsProvider,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{Database, Overlay, RelId, RelStats, RelationSchema, Schema, Tuple, Value};
    use ric_query::eval::{eval_tableau, eval_tableau_delta};
    use ric_query::tableau::Tableau;
    use ric_query::{parse_cq, Cq};
    use std::collections::BTreeSet;

    fn schema() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("E", &["src", "dst"]),
            RelationSchema::infinite("L", &["node", "tag"]),
        ])
        .unwrap()
    }

    fn db(schema: &Schema) -> Database {
        let e = schema.rel_id("E").unwrap();
        let l = schema.rel_id("L").unwrap();
        let mut db = Database::empty(schema);
        for (a, b) in [(1, 2), (2, 3), (3, 1), (1, 1), (2, 1), (3, 3)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        for (n, t) in [(1, 10), (2, 10), (3, 20)] {
            db.insert(l, Tuple::new([Value::int(n), Value::int(t)]));
        }
        db
    }

    fn tableau(schema: &Schema, src: &str) -> Tableau {
        Tableau::of(&parse_cq(schema, src).unwrap()).unwrap()
    }

    fn queries() -> Vec<&'static str> {
        vec![
            "Q(X, Z) :- E(X, Y), E(Y, Z).",
            "Q(X, Z) :- E(X, Y), E(Y, Z), X != Z.",
            "Q(X, T) :- E(X, Y), L(Y, T).",
            "Q(X) :- E(X, Y), L(X, T), T = 10.",
            "Q(X, Y) :- E(X, Y), X != Y.",
            "Q(Y) :- E(1, Y).",
            "Q(X, Y, Z) :- E(X, Y), E(Y, Z), E(Z, X).",
        ]
    }

    #[test]
    fn planned_eval_matches_greedy_eval() {
        let s = schema();
        let d = db(&s);
        let mut scratch = PlanScratch::default();
        for src in queries() {
            let t = tableau(&s, src);
            for stats in [true, false] {
                let plan = if stats {
                    plan_tableau(&t, &d)
                } else {
                    plan_tableau(&t, &planner::NoStats)
                };
                let mut out = BTreeSet::new();
                plan.eval_into(&d, &mut scratch, &mut out);
                assert_eq!(out, eval_tableau(&t, &d), "{src} (stats={stats})");
            }
        }
    }

    #[test]
    fn planned_delta_eval_matches_greedy_delta_eval() {
        let s = schema();
        let base = db(&s);
        let e = s.rel_id("E").unwrap();
        let mut delta = Database::empty(&s);
        delta.insert(e, Tuple::new([Value::int(3), Value::int(4)]));
        delta.insert(e, Tuple::new([Value::int(1), Value::int(2)])); // not novel
        let ov = Overlay::new(&base, &delta).unwrap();
        let mut scratch = PlanScratch::default();
        for src in queries() {
            let t = tableau(&s, src);
            let plans = plan_tableau_delta(&t, &base);
            let mut out = BTreeSet::new();
            plans.eval_delta_into(&ov, &mut scratch, &mut out);
            assert_eq!(out, eval_tableau_delta(&t, &ov), "{src}");
        }
    }

    #[test]
    fn delta_answers_within_agrees_with_subset_check() {
        let s = schema();
        let base = db(&s);
        let e = s.rel_id("E").unwrap();
        let mut delta = Database::empty(&s);
        delta.insert(e, Tuple::new([Value::int(2), Value::int(4)]));
        let ov = Overlay::new(&base, &delta).unwrap();
        let mut scratch = PlanScratch::default();
        for src in queries() {
            let t = tableau(&s, src);
            let plans = plan_tableau_delta(&t, &base);
            let added = eval_tableau_delta(&t, &ov);
            // rhs = everything: within. rhs minus one answer: not within.
            assert!(plans.delta_answers_within(&ov, &mut scratch, &added));
            if let Some(first) = added.iter().next() {
                let mut rhs = added.clone();
                rhs.remove(first);
                assert!(
                    !plans.delta_answers_within(&ov, &mut scratch, &rhs),
                    "{src}"
                );
            }
        }
    }

    #[test]
    fn lying_stats_change_order_not_answers() {
        struct Lying;
        impl StatsProvider for Lying {
            fn rel_stats(&self, rel: RelId) -> RelStats {
                // Wildly wrong: claims relation 0 is huge and undistinctive,
                // relation 1 tiny and perfectly selective.
                if rel.0 == 0 {
                    RelStats {
                        rows: 1_000_000,
                        distinct: vec![1, 1],
                    }
                } else {
                    RelStats {
                        rows: 1,
                        distinct: vec![1_000_000, 1_000_000],
                    }
                }
            }
        }
        let s = schema();
        let d = db(&s);
        let mut scratch = PlanScratch::default();
        for src in queries() {
            let t = tableau(&s, src);
            let plan = plan_tableau(&t, &Lying);
            let mut out = BTreeSet::new();
            plan.eval_into(&d, &mut scratch, &mut out);
            assert_eq!(out, eval_tableau(&t, &d), "{src}");
        }
    }

    #[test]
    fn no_stats_falls_back_to_static_greedy_order() {
        let s = schema();
        let t = tableau(&s, "Q(Y) :- E(1, Y), L(Y, T).");
        let plan = plan_tableau(&t, &planner::NoStats);
        assert!(plan.fallback());
        // The constant-bearing atom E(1, Y) is most-bound and goes first.
        assert_eq!(plan.join_order()[0], 0);
        let with_stats = plan_tableau(&t, &db(&s));
        assert!(!with_stats.fallback());
        assert!(with_stats.cost() > 0.0);
    }

    #[test]
    fn atomless_tableau_plans_and_evaluates() {
        let s = schema();
        let d = db(&s);
        let q = Cq::builder().head(vec![]).build();
        let t = Tableau::of(&q).unwrap();
        let plan = plan_tableau(&t, &d);
        let mut out = BTreeSet::new();
        let mut scratch = PlanScratch::default();
        plan.eval_into(&d, &mut scratch, &mut out);
        assert_eq!(out, BTreeSet::from([Tuple::unit()]));
        // Delta evaluation of an atomless tableau adds nothing.
        let delta = Database::empty(&s);
        let ov = Overlay::new(&d, &delta).unwrap();
        let plans = plan_tableau_delta(&t, &d);
        let mut dout = BTreeSet::new();
        plans.eval_delta_into(&ov, &mut scratch, &mut dout);
        assert!(dout.is_empty());
    }

    #[test]
    fn explain_renders_order_and_estimates() {
        let s = schema();
        let t = tableau(&s, "Q(X, T) :- E(X, Y), L(Y, T).");
        let plan = plan_tableau(&t, &db(&s));
        let text = plan.render(|rel| s.relation(rel).map(|r| r.name.clone()).unwrap_or_default());
        assert!(text.contains("E") && text.contains("L"), "{text}");
        assert!(text.contains("est="), "{text}");
    }

    #[test]
    fn repeated_variable_within_one_atom_checks_equality() {
        let s = schema();
        let d = db(&s);
        let t = tableau(&s, "Q(X) :- E(X, X).");
        let plan = plan_tableau(&t, &d);
        let mut out = BTreeSet::new();
        let mut scratch = PlanScratch::default();
        plan.eval_into(&d, &mut scratch, &mut out);
        assert_eq!(out, eval_tableau(&t, &d));
        // (1,1) and (3,3) are the self-loops.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn constant_constant_term_neq_is_checked() {
        // A neq with one variable side bound via equality to a constant
        // survives tableau normalization as var-vs-const; exercise the
        // const side of the pinned checks.
        let s = schema();
        let d = db(&s);
        let t = tableau(&s, "Q(X, Y) :- E(X, Y), Y != 1.");
        let plan = plan_tableau(&t, &d);
        let mut out = BTreeSet::new();
        let mut scratch = PlanScratch::default();
        plan.eval_into(&d, &mut scratch, &mut out);
        assert_eq!(out, eval_tableau(&t, &d));
        assert!(out.iter().all(|t| t.get(1) != &Value::int(1)));
    }
}

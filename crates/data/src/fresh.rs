//! Fresh-value allocation.
//!
//! The characterizations of Section 3.2 extend the constants of
//! `D, Dm, Q, V` with a set `New` of *distinct values not occurring in any of
//! them*, one per variable of the relevant tableaux. [`FreshValues`] produces
//! such values deterministically: integers strictly above every integer seen
//! in the inputs. Fresh values always come from the countably infinite domain
//! `d` — finite-domain positions never receive them.

use crate::value::Value;

/// Deterministic generator of values guaranteed not to collide with any value
/// registered through [`FreshValues::observe`].
#[derive(Clone, Debug)]
pub struct FreshValues {
    next: i64,
}

impl Default for FreshValues {
    fn default() -> Self {
        FreshValues::new()
    }
}

impl FreshValues {
    /// A generator that has observed nothing; starts above a recognisable
    /// base so fresh values are easy to spot in debug output.
    pub fn new() -> Self {
        FreshValues { next: 1_000_000 }
    }

    /// Record a value that must never be produced.
    pub fn observe(&mut self, v: &Value) {
        if let Value::Int(i) = v {
            if *i >= self.next {
                self.next = i + 1;
            }
        }
    }

    /// Record every value in an iterator.
    pub fn observe_all<'a>(&mut self, vs: impl IntoIterator<Item = &'a Value>) {
        for v in vs {
            self.observe(v);
        }
    }

    /// Produce the next fresh value.
    pub fn fresh(&mut self) -> Value {
        let v = Value::Int(self.next);
        self.next += 1;
        v
    }

    /// Produce `n` fresh values.
    pub fn fresh_n(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// Has `v` possibly been produced by this generator? (Conservative: true
    /// for any integer at or above the recognisable base and below `next`.)
    pub fn produced(&self, v: &Value) -> bool {
        matches!(v, Value::Int(i) if (1_000_000..self.next).contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_values_avoid_observed() {
        let mut g = FreshValues::new();
        g.observe(&Value::int(5_000_000));
        g.observe(&Value::str("harmless"));
        let f = g.fresh();
        assert_eq!(f, Value::int(5_000_001));
        assert_ne!(g.fresh(), f);
    }

    #[test]
    fn fresh_n_distinct() {
        let mut g = FreshValues::new();
        let vs = g.fresh_n(10);
        let set: std::collections::BTreeSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn produced_tracks_range() {
        let mut g = FreshValues::new();
        let f = g.fresh();
        assert!(g.produced(&f));
        assert!(!g.produced(&Value::int(3)));
        assert!(!g.produced(&Value::str("x")));
    }
}

//! # `ric-data` — relational substrate
//!
//! The data model underlying the *relative information completeness* framework
//! of Fan & Geerts (PODS 2009 / TODS 2010):
//!
//! * [`Value`] — constants drawn from either a countably infinite domain or a
//!   finite domain (the paper's `d` and `d_f`, Section 2.1);
//! * [`DomainKind`] — per-attribute domain declaration;
//! * [`Schema`] / [`RelationSchema`] / [`Attribute`] — relational schemas `R`
//!   and `R_m` (database and master data share the same machinery);
//! * [`Tuple`], [`Instance`], [`Database`] — instances with set semantics,
//!   the containment order `D ⊆ D′`, and extension construction;
//! * [`FreshValues`] — allocation of values guaranteed not to occur in any of
//!   the inputs, used to build the `New` part of `Adom` (Section 3.2);
//! * [`SplitMix64`] — a small deterministic PRNG for workload generation
//!   (the workspace builds offline, so there is no `rand` dependency).
//!
//! Everything here is deliberately simple and allocation-conscious: tuples are
//! boxed slices, instances are ordered sets (deterministic iteration makes the
//! deciders reproducible), and values intern small integers without heap use.

pub mod database;
pub mod error;
pub mod fresh;
pub mod index;
pub mod intern;
pub mod overlay;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod store;
pub mod value;

pub use database::{Database, Instance, Tuple};
pub use error::DataError;
pub use fresh::FreshValues;
pub use index::ColumnIndex;
pub use intern::{Interner, Sym};
pub use overlay::Overlay;
pub use rng::SplitMix64;
pub use schema::{Attribute, DomainKind, RelId, RelationSchema, Schema};
pub use stats::RelStats;
pub use store::TupleStore;
pub use value::Value;

//! Overlays: the extension `D ∪ Δ` as a *view*, without copying `D`.
//!
//! The deciders' innermost loops ask, per candidate valuation, whether a
//! small delta `Δ` (the instantiated tableau atoms, at most a handful of
//! tuples) keeps the constraints satisfied. Materializing `D ∪ Δ` clones the
//! whole base per candidate; an [`Overlay`] borrows both sides and answers
//! membership, scans, and index probes against their union directly.
//!
//! A delta tuple already present in the base is *not novel*: it changes
//! nothing about the union. The novel tuples are what incremental constraint
//! checking ([`ric-constraints`]'s delta mode) evaluates against.

use crate::database::{Database, Tuple};
use crate::error::DataError;
use crate::schema::RelId;
use crate::value::Value;
use std::collections::BTreeSet;

/// A borrowed view of `base ∪ delta`.
#[derive(Clone, Copy, Debug)]
pub struct Overlay<'a> {
    base: &'a Database,
    delta: &'a Database,
}

impl<'a> Overlay<'a> {
    /// View `base ∪ delta`. Errors when the two sides disagree on the number
    /// of relations.
    pub fn new(base: &'a Database, delta: &'a Database) -> Result<Self, DataError> {
        if base.len() != delta.len() {
            return Err(DataError::SchemaMismatch);
        }
        Ok(Overlay { base, delta })
    }

    /// The base database `D`.
    pub fn base(&self) -> &'a Database {
        self.base
    }

    /// The delta database `Δ` (possibly overlapping the base).
    pub fn delta(&self) -> &'a Database {
        self.delta
    }

    /// Number of relations.
    pub fn rel_count(&self) -> usize {
        self.base.len()
    }

    /// Union membership.
    pub fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        self.base.instance(rel).contains(t) || self.delta.instance(rel).contains(t)
    }

    /// Union cardinality of one relation (novel delta tuples counted once).
    pub fn rel_len(&self, rel: RelId) -> usize {
        let base = self.base.instance(rel);
        base.len()
            + self
                .delta
                .instance(rel)
                .iter()
                .filter(|t| !base.contains(t))
                .count()
    }

    /// Relations with at least one *novel* delta tuple (a tuple of `Δ` not
    /// already in `D`).
    pub fn novel_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.delta.iter().filter_map(|(rel, inst)| {
            let base = self.base.instance(rel);
            inst.iter().any(|t| !base.contains(t)).then_some(rel)
        })
    }

    /// Visit the novel delta tuples of `rel`; stop early when `f` returns
    /// `false`. Returns `false` iff stopped early.
    pub fn for_each_novel(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        let base = self.base.instance(rel);
        for t in self.delta.instance(rel).iter() {
            if !base.contains(t) && !f(t) {
                return false;
            }
        }
        true
    }

    /// Collect the union's active domain into `out`.
    pub fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        out.extend(self.base.active_domain().iter().cloned());
        for (_, inst) in self.delta.iter() {
            for t in inst.iter() {
                for v in t.iter() {
                    out.insert(v.clone());
                }
            }
        }
    }

    /// Materialize the union as an owned database — the escape hatch for
    /// code paths without an overlay-aware evaluator (FO/FP constraint
    /// bodies).
    pub fn materialize(&self) -> Database {
        self.base.union(self.delta).unwrap_or_else(|e| {
            // Both sides come from the same schema, so arities always agree.
            unreachable!("overlay sides agree on relation count by construction: {e:?}")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    fn two_rel() -> (Database, Database) {
        let mut base = Database::with_relations(2);
        base.insert(RelId(0), t(&[1, 2]));
        base.insert(RelId(0), t(&[2, 3]));
        let mut delta = Database::with_relations(2);
        delta.insert(RelId(0), t(&[2, 3])); // already in base: not novel
        delta.insert(RelId(1), t(&[9]));
        (base, delta)
    }

    #[test]
    fn membership_and_lengths_cover_the_union() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        assert!(ov.contains(RelId(0), &t(&[1, 2])));
        assert!(ov.contains(RelId(1), &t(&[9])));
        assert!(!ov.contains(RelId(0), &t(&[9, 9])));
        assert_eq!(ov.rel_len(RelId(0)), 2);
        assert_eq!(ov.rel_len(RelId(1)), 1);
        assert_eq!(ov.materialize(), base.union(&delta).unwrap());
    }

    #[test]
    fn novelty_ignores_delta_tuples_already_in_base() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        let novel: Vec<RelId> = ov.novel_rels().collect();
        assert_eq!(novel, vec![RelId(1)]);
        let mut seen = Vec::new();
        ov.for_each_novel(RelId(0), &mut |t| {
            seen.push(t.clone());
            true
        });
        assert!(seen.is_empty(), "(2,3) is already in the base");
        ov.for_each_novel(RelId(1), &mut |t| {
            seen.push(t.clone());
            true
        });
        assert_eq!(seen, vec![t(&[9])]);
    }

    #[test]
    fn mismatched_relation_counts_rejected() {
        let base = Database::with_relations(1);
        let delta = Database::with_relations(2);
        assert!(Overlay::new(&base, &delta).is_err());
    }

    #[test]
    fn active_domain_unions_both_sides() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        let mut dom = BTreeSet::new();
        ov.active_domain_into(&mut dom);
        assert_eq!(
            dom,
            [1, 2, 3, 9]
                .into_iter()
                .map(Value::int)
                .collect::<BTreeSet<_>>()
        );
    }
}

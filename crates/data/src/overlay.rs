//! Overlays: the extension `D ∪ Δ` — and, with a deletes side, the stream
//! view `(D ∖ Δ⁻) ∪ Δ⁺` — as a *view*, without copying `D`.
//!
//! The deciders' innermost loops ask, per candidate valuation, whether a
//! small delta `Δ` (the instantiated tableau atoms, at most a handful of
//! tuples) keeps the constraints satisfied. Materializing `D ∪ Δ` clones the
//! whole base per candidate; an [`Overlay`] borrows both sides and answers
//! membership, scans, and index probes against their union directly.
//!
//! A delta tuple already present in the base is *not novel*: it changes
//! nothing about the union. The novel tuples are what incremental constraint
//! checking (`ric-constraints`'s delta mode) evaluates against.
//!
//! [`Overlay::with_deletes`] adds a third side of *tombstones*: base tuples
//! listed there are treated as absent, so the effective view is
//! `(base ∖ deletes) ∪ delta`. A tuple that is both tombstoned and
//! re-inserted through the delta is present (the delta wins), and counts as
//! novel — its base copy is dead. Streams (the `ric-monitor` crate) use this
//! to evaluate against a post-transaction state without mutating the base.
//! The delta-mode constraint checker's precondition ("the constraints hold
//! on the base") then refers to the *effective* base `base ∖ deletes`.
//!
//! Tombstones interact with two caches deliberately:
//!
//! * the base [`Database::active_domain`] cache still contains constants
//!   that appear only in tombstoned tuples, so [`Overlay::active_domain_into`]
//!   bypasses it and rescans whenever a deletes side is present;
//! * the base per-column [`ColumnIndex`](crate::index::ColumnIndex) still
//!   lists tombstoned tuples, so the store's probe path re-checks every
//!   index hit against the tombstones (see `store.rs`).

use crate::database::{Database, Tuple};
use crate::error::DataError;
use crate::schema::RelId;
use crate::value::Value;
use std::collections::BTreeSet;

/// A borrowed view of `(base ∖ deletes) ∪ delta`.
#[derive(Clone, Copy, Debug)]
pub struct Overlay<'a> {
    base: &'a Database,
    delta: &'a Database,
    deletes: Option<&'a Database>,
}

impl<'a> Overlay<'a> {
    /// View `base ∪ delta`. Errors when the two sides disagree on the number
    /// of relations.
    pub fn new(base: &'a Database, delta: &'a Database) -> Result<Self, DataError> {
        if base.len() != delta.len() {
            return Err(DataError::SchemaMismatch);
        }
        Ok(Overlay {
            base,
            delta,
            deletes: None,
        })
    }

    /// View `(base ∖ deletes) ∪ delta`. Errors when any side disagrees on
    /// the number of relations. Tombstones not present in the base are
    /// harmless no-ops; a tuple in both `deletes` and `delta` is present
    /// (and novel — its base copy is dead).
    pub fn with_deletes(
        base: &'a Database,
        delta: &'a Database,
        deletes: &'a Database,
    ) -> Result<Self, DataError> {
        if base.len() != delta.len() || base.len() != deletes.len() {
            return Err(DataError::SchemaMismatch);
        }
        Ok(Overlay {
            base,
            delta,
            deletes: Some(deletes),
        })
    }

    /// The base database `D`.
    pub fn base(&self) -> &'a Database {
        self.base
    }

    /// The delta database `Δ` (possibly overlapping the base).
    pub fn delta(&self) -> &'a Database {
        self.delta
    }

    /// The tombstoned tuples `Δ⁻`, when this overlay carries a deletes side.
    pub fn deletes(&self) -> Option<&'a Database> {
        self.deletes
    }

    /// Number of relations.
    pub fn rel_count(&self) -> usize {
        self.base.len()
    }

    /// Is `t` a *live* base tuple — present in the base and not tombstoned?
    pub fn in_live_base(&self, rel: RelId, t: &Tuple) -> bool {
        self.base.instance(rel).contains(t)
            && !self.deletes.is_some_and(|d| d.instance(rel).contains(t))
    }

    /// Effective-view membership.
    pub fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        self.in_live_base(rel, t) || self.delta.instance(rel).contains(t)
    }

    /// Effective-view cardinality of one relation (novel delta tuples
    /// counted once, tombstoned base tuples not at all).
    pub fn rel_len(&self, rel: RelId) -> usize {
        let live_base = match self.deletes {
            None => self.base.instance(rel).len(),
            Some(_) => self
                .base
                .instance(rel)
                .iter()
                .filter(|t| self.in_live_base(rel, t))
                .count(),
        };
        live_base
            + self
                .delta
                .instance(rel)
                .iter()
                .filter(|t| !self.in_live_base(rel, t))
                .count()
    }

    /// Relations with at least one *novel* delta tuple (a tuple of `Δ` not
    /// already live in the base).
    pub fn novel_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.delta.iter().filter_map(|(rel, inst)| {
            inst.iter()
                .any(|t| !self.in_live_base(rel, t))
                .then_some(rel)
        })
    }

    /// Visit the novel delta tuples of `rel`; stop early when `f` returns
    /// `false`. Returns `false` iff stopped early.
    pub fn for_each_novel(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        for t in self.delta.instance(rel).iter() {
            if !self.in_live_base(rel, t) && !f(t) {
                return false;
            }
        }
        true
    }

    /// Collect the effective view's active domain into `out`.
    ///
    /// With a deletes side the base's cached
    /// [`active_domain`](Database::active_domain) cannot be trusted — it
    /// still holds constants that survive only in tombstoned tuples — so the
    /// live base tuples are rescanned instead.
    pub fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        match self.deletes {
            None => out.extend(self.base.active_domain().iter().cloned()),
            Some(_) => {
                for (rel, inst) in self.base.iter() {
                    for t in inst.iter() {
                        if self.in_live_base(rel, t) {
                            out.extend(t.iter().cloned());
                        }
                    }
                }
            }
        }
        for (_, inst) in self.delta.iter() {
            for t in inst.iter() {
                for v in t.iter() {
                    out.insert(v.clone());
                }
            }
        }
    }

    /// Materialize the effective view as an owned database — the escape
    /// hatch for code paths without an overlay-aware evaluator (FO/FP
    /// constraint bodies).
    pub fn materialize(&self) -> Database {
        let live = match self.deletes {
            None => self.base.clone(),
            Some(del) => self.base.difference(del).unwrap_or_else(|e| {
                unreachable!("overlay sides agree on relation count by construction: {e:?}")
            }),
        };
        live.union(self.delta).unwrap_or_else(|e| {
            // All sides come from the same schema, so arities always agree.
            unreachable!("overlay sides agree on relation count by construction: {e:?}")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    fn two_rel() -> (Database, Database) {
        let mut base = Database::with_relations(2);
        base.insert(RelId(0), t(&[1, 2]));
        base.insert(RelId(0), t(&[2, 3]));
        let mut delta = Database::with_relations(2);
        delta.insert(RelId(0), t(&[2, 3])); // already in base: not novel
        delta.insert(RelId(1), t(&[9]));
        (base, delta)
    }

    #[test]
    fn membership_and_lengths_cover_the_union() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        assert!(ov.contains(RelId(0), &t(&[1, 2])));
        assert!(ov.contains(RelId(1), &t(&[9])));
        assert!(!ov.contains(RelId(0), &t(&[9, 9])));
        assert_eq!(ov.rel_len(RelId(0)), 2);
        assert_eq!(ov.rel_len(RelId(1)), 1);
        assert_eq!(ov.materialize(), base.union(&delta).unwrap());
    }

    #[test]
    fn novelty_ignores_delta_tuples_already_in_base() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        let novel: Vec<RelId> = ov.novel_rels().collect();
        assert_eq!(novel, vec![RelId(1)]);
        let mut seen = Vec::new();
        ov.for_each_novel(RelId(0), &mut |t| {
            seen.push(t.clone());
            true
        });
        assert!(seen.is_empty(), "(2,3) is already in the base");
        ov.for_each_novel(RelId(1), &mut |t| {
            seen.push(t.clone());
            true
        });
        assert_eq!(seen, vec![t(&[9])]);
    }

    #[test]
    fn mismatched_relation_counts_rejected() {
        let base = Database::with_relations(1);
        let delta = Database::with_relations(2);
        assert!(Overlay::new(&base, &delta).is_err());
        let del1 = Database::with_relations(1);
        let del2 = Database::with_relations(2);
        let delta1 = Database::with_relations(1);
        assert!(Overlay::with_deletes(&base, &delta1, &del2).is_err());
        assert!(Overlay::with_deletes(&base, &delta1, &del1).is_ok());
    }

    #[test]
    fn active_domain_unions_both_sides() {
        let (base, delta) = two_rel();
        let ov = Overlay::new(&base, &delta).unwrap();
        let mut dom = BTreeSet::new();
        ov.active_domain_into(&mut dom);
        assert_eq!(
            dom,
            [1, 2, 3, 9]
                .into_iter()
                .map(Value::int)
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn tombstones_remove_base_tuples_from_the_view() {
        let (base, delta) = two_rel();
        let mut deletes = Database::with_relations(2);
        deletes.insert(RelId(0), t(&[1, 2]));
        deletes.insert(RelId(0), t(&[7, 7])); // not in base: harmless
        let ov = Overlay::with_deletes(&base, &delta, &deletes).unwrap();
        assert!(!ov.contains(RelId(0), &t(&[1, 2])));
        assert!(ov.contains(RelId(0), &t(&[2, 3])));
        assert_eq!(ov.rel_len(RelId(0)), 1);
        let mut expected = Database::with_relations(2);
        expected.insert(RelId(0), t(&[2, 3]));
        expected.insert(RelId(1), t(&[9]));
        assert_eq!(ov.materialize(), expected);
    }

    #[test]
    fn deleted_then_reinserted_tuple_is_present_and_novel() {
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1]));
        let mut deletes = Database::with_relations(1);
        deletes.insert(RelId(0), t(&[1]));
        let mut delta = Database::with_relations(1);
        delta.insert(RelId(0), t(&[1]));
        let ov = Overlay::with_deletes(&base, &delta, &deletes).unwrap();
        assert!(ov.contains(RelId(0), &t(&[1])));
        assert_eq!(ov.rel_len(RelId(0)), 1);
        // The base copy is dead, so the delta copy is the live one — novel.
        let novel: Vec<RelId> = ov.novel_rels().collect();
        assert_eq!(novel, vec![RelId(0)]);
        let mut seen = Vec::new();
        ov.for_each_novel(RelId(0), &mut |t| {
            seen.push(t.clone());
            true
        });
        assert_eq!(seen, vec![t(&[1])]);
    }

    #[test]
    fn tombstoned_only_constants_leave_the_active_domain() {
        // Regression: the base's *cached* active domain still contains 5;
        // the overlay must rescan, not trust the cache.
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1, 2]));
        base.insert(RelId(0), t(&[5, 2]));
        let _warm = base.active_domain(); // populate the cache
        let mut deletes = Database::with_relations(1);
        deletes.insert(RelId(0), t(&[5, 2]));
        let delta = Database::with_relations(1);
        let ov = Overlay::with_deletes(&base, &delta, &deletes).unwrap();
        let mut dom = BTreeSet::new();
        ov.active_domain_into(&mut dom);
        assert_eq!(
            dom,
            [1, 2].into_iter().map(Value::int).collect::<BTreeSet<_>>(),
            "constant 5 survives only in a tombstoned tuple"
        );
    }
}

//! A small deterministic PRNG for workload and instance generation.
//!
//! The workspace builds fully offline, so the generators cannot pull in the
//! `rand` crate; [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014 — the
//! sequence used to seed `java.util.SplittableRandom` and xoshiro) is more
//! than enough for generating benchmark instances and randomized scenarios.
//! It is *not* cryptographic and must never be used where unpredictability
//! matters; every use in this workspace is seeded explicitly so instance
//! generation is reproducible across runs and platforms.

/// A 64-bit SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (same entry point name as
    /// `rand::SeedableRng` to keep call sites familiar).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (empty ranges yield `range.start`).
    /// Uses rejection sampling, so the draw is exactly uniform.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end.saturating_sub(range.start) as u64;
        if span == 0 {
            return range.start;
        }
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let x = self.next_u64();
            if x < zone {
                return range.start + (x % span) as usize;
            }
        }
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa are plenty for instance generation.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// A uniformly chosen element of `slice`, or `None` when it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the published SplitMix64
        // C implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_draws_stay_in_range_and_cover_it() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = rng.random_range(10..15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 5 values should appear in 200 draws"
        );
    }

    #[test]
    fn empty_range_is_start() {
        let mut rng = SplitMix64::seed_from_u64(7);
        assert_eq!(rng.random_range(3..3), 3);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = SplitMix64::seed_from_u64(99);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let heads = (0..1000).filter(|_| rng.random_bool(0.5)).count();
        assert!(
            (350..=650).contains(&heads),
            "got {heads} heads out of 1000"
        );
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let items = ["a", "b", "c"];
        let empty: [&str; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}

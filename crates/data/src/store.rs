//! [`TupleStore`] — the access-path abstraction the evaluators join through.
//!
//! A store is anything that can answer "scan relation `r`", "probe relation
//! `r` for tuples with value `v` in column `c`", and membership. Both a plain
//! [`Database`] and an [`Overlay`] (`D ∪ Δ` without copying `D`) implement
//! it, so one generic evaluator serves the deciders' base-database queries
//! *and* their per-candidate extension checks.
//!
//! Visitors return `bool` (`false` = stop) so Boolean queries can exit on the
//! first witness; the scan/probe methods mirror that, returning `false` iff
//! they stopped early. Probes go through each instance's lazily built
//! [`ColumnIndex`](crate::index::ColumnIndex) and are counted per thread
//! ([`crate::index::probe_count`]).

use crate::database::{Database, Tuple};
use crate::overlay::Overlay;
use crate::schema::RelId;
use crate::stats::RelStats;
use crate::value::Value;
use std::collections::BTreeSet;

/// Read access to a set of relation instances, with index-probe support.
pub trait TupleStore {
    /// Number of relations.
    fn rel_count(&self) -> usize;

    /// Number of tuples in `rel`.
    fn rel_len(&self, rel: RelId) -> usize;

    /// Membership.
    fn contains(&self, rel: RelId, t: &Tuple) -> bool;

    /// Visit every tuple of `rel` in deterministic order; stop when `f`
    /// returns `false`. Returns `false` iff stopped early.
    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool;

    /// Visit the tuples of `rel` with value `v` at column `col`
    /// (index-accelerated), in the same relative order as [`Self::scan`];
    /// stop when `f` returns `false`. Returns `false` iff stopped early.
    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool;

    /// Collect every constant appearing in the store into `out`.
    fn active_domain_into(&self, out: &mut BTreeSet<Value>);

    /// Cardinality and per-column distinct counts of `rel`, for cost-based
    /// planning. Estimates only — they steer plan choice, never answers.
    fn stats(&self, rel: RelId) -> RelStats;
}

impl TupleStore for Database {
    fn rel_count(&self) -> usize {
        self.len()
    }

    fn rel_len(&self, rel: RelId) -> usize {
        self.instance(rel).len()
    }

    fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        self.instance(rel).contains(t)
    }

    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        for t in self.instance(rel).iter() {
            if !f(t) {
                return false;
            }
        }
        true
    }

    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        let idx = self.instance(rel).index();
        for &id in idx.probe(col, v) {
            if !f(idx.tuple(id)) {
                return false;
            }
        }
        true
    }

    fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        out.extend(self.active_domain().iter().cloned());
    }

    fn stats(&self, rel: RelId) -> RelStats {
        self.instance(rel).stats()
    }
}

impl TupleStore for Overlay<'_> {
    fn rel_count(&self) -> usize {
        Overlay::rel_count(self)
    }

    fn rel_len(&self, rel: RelId) -> usize {
        Overlay::rel_len(self, rel)
    }

    fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        Overlay::contains(self, rel, t)
    }

    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        if !self.base().scan(rel, f) {
            return false;
        }
        self.for_each_novel(rel, f)
    }

    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        if !self.base().probe(rel, col, v, f) {
            return false;
        }
        let base = self.base();
        let idx = self.delta().instance(rel).index();
        for &id in idx.probe(col, v) {
            let t = idx.tuple(id);
            // Skip delta tuples already in the base: the union yields each
            // tuple once.
            if !base.instance(rel).contains(t) && !f(t) {
                return false;
            }
        }
        true
    }

    fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        Overlay::active_domain_into(self, out)
    }

    fn stats(&self, rel: RelId) -> RelStats {
        self.base()
            .instance(rel)
            .stats()
            .overlaid(&self.delta().instance(rel).stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    fn collect_scan<S: TupleStore>(s: &S, rel: RelId) -> Vec<Tuple> {
        let mut out = Vec::new();
        s.scan(rel, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    fn collect_probe<S: TupleStore>(s: &S, rel: RelId, col: usize, v: &Value) -> Vec<Tuple> {
        let mut out = Vec::new();
        s.probe(rel, col, v, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    #[test]
    fn database_scan_and_probe_agree() {
        let mut db = Database::with_relations(1);
        for pair in [[1, 2], [1, 3], [2, 3]] {
            db.insert(RelId(0), t(&pair.map(i64::from)));
        }
        assert_eq!(collect_scan(&db, RelId(0)).len(), 3);
        assert_eq!(
            collect_probe(&db, RelId(0), 0, &Value::int(1)),
            vec![t(&[1, 2]), t(&[1, 3])]
        );
    }

    #[test]
    fn overlay_probe_deduplicates_and_scans_union() {
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1, 2]));
        let mut delta = Database::with_relations(1);
        delta.insert(RelId(0), t(&[1, 2])); // duplicate of base
        delta.insert(RelId(0), t(&[1, 9])); // novel
        let ov = Overlay::new(&base, &delta).unwrap();
        assert_eq!(
            collect_probe(&ov, RelId(0), 0, &Value::int(1)),
            vec![t(&[1, 2]), t(&[1, 9])]
        );
        assert_eq!(collect_scan(&ov, RelId(0)).len(), 2);
        assert_eq!(TupleStore::rel_len(&ov, RelId(0)), 2);
    }

    #[test]
    fn early_exit_propagates() {
        let mut db = Database::with_relations(1);
        db.insert(RelId(0), t(&[1]));
        db.insert(RelId(0), t(&[2]));
        let mut seen = 0;
        let completed = db.scan(RelId(0), &mut |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1);
    }
}

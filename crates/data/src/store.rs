//! [`TupleStore`] — the access-path abstraction the evaluators join through.
//!
//! A store is anything that can answer "scan relation `r`", "probe relation
//! `r` for tuples with value `v` in column `c`", and membership. Both a plain
//! [`Database`] and an [`Overlay`] (`D ∪ Δ` without copying `D`) implement
//! it, so one generic evaluator serves the deciders' base-database queries
//! *and* their per-candidate extension checks.
//!
//! Visitors return `bool` (`false` = stop) so Boolean queries can exit on the
//! first witness; the scan/probe methods mirror that, returning `false` iff
//! they stopped early. Probes go through each instance's lazily built
//! [`ColumnIndex`](crate::index::ColumnIndex) and are counted per thread
//! ([`crate::index::probe_count`]).

use crate::database::{Database, Tuple};
use crate::overlay::Overlay;
use crate::schema::RelId;
use crate::stats::RelStats;
use crate::value::Value;
use std::collections::BTreeSet;

/// Read access to a set of relation instances, with index-probe support.
pub trait TupleStore {
    /// Number of relations.
    fn rel_count(&self) -> usize;

    /// Number of tuples in `rel`.
    fn rel_len(&self, rel: RelId) -> usize;

    /// Membership.
    fn contains(&self, rel: RelId, t: &Tuple) -> bool;

    /// Visit every tuple of `rel` in deterministic order; stop when `f`
    /// returns `false`. Returns `false` iff stopped early.
    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool;

    /// Visit the tuples of `rel` with value `v` at column `col`
    /// (index-accelerated), in the same relative order as [`Self::scan`];
    /// stop when `f` returns `false`. Returns `false` iff stopped early.
    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool;

    /// Collect every constant appearing in the store into `out`.
    fn active_domain_into(&self, out: &mut BTreeSet<Value>);

    /// Cardinality and per-column distinct counts of `rel`, for cost-based
    /// planning. Estimates only — they steer plan choice, never answers.
    fn stats(&self, rel: RelId) -> RelStats;
}

impl TupleStore for Database {
    fn rel_count(&self) -> usize {
        self.len()
    }

    fn rel_len(&self, rel: RelId) -> usize {
        self.instance(rel).len()
    }

    fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        self.instance(rel).contains(t)
    }

    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        for t in self.instance(rel).iter() {
            if !f(t) {
                return false;
            }
        }
        true
    }

    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        let idx = self.instance(rel).index();
        for &id in idx.probe(col, v) {
            if !f(idx.tuple(id)) {
                return false;
            }
        }
        true
    }

    fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        out.extend(self.active_domain().iter().cloned());
    }

    fn stats(&self, rel: RelId) -> RelStats {
        self.instance(rel).stats()
    }
}

impl TupleStore for Overlay<'_> {
    fn rel_count(&self) -> usize {
        Overlay::rel_count(self)
    }

    fn rel_len(&self, rel: RelId) -> usize {
        Overlay::rel_len(self, rel)
    }

    fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        Overlay::contains(self, rel, t)
    }

    fn scan(&self, rel: RelId, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        let live = self
            .base()
            .scan(rel, &mut |t| !self.in_live_base(rel, t) || f(t));
        if !live {
            return false;
        }
        self.for_each_novel(rel, f)
    }

    fn probe(&self, rel: RelId, col: usize, v: &Value, f: &mut dyn FnMut(&Tuple) -> bool) -> bool {
        // The base's lazily built index still lists tombstoned tuples; every
        // hit is re-checked against the deletes side before being yielded.
        let live = self
            .base()
            .probe(rel, col, v, &mut |t| !self.in_live_base(rel, t) || f(t));
        if !live {
            return false;
        }
        let idx = self.delta().instance(rel).index();
        for &id in idx.probe(col, v) {
            let t = idx.tuple(id);
            // Skip delta tuples already live in the base: the effective view
            // yields each tuple once.
            if !self.in_live_base(rel, t) && !f(t) {
                return false;
            }
        }
        true
    }

    fn active_domain_into(&self, out: &mut BTreeSet<Value>) {
        Overlay::active_domain_into(self, out)
    }

    fn stats(&self, rel: RelId) -> RelStats {
        match self.deletes() {
            // Fast additive path: combine the two sides' cached index stats.
            None => self
                .base()
                .instance(rel)
                .stats()
                .overlaid(&self.delta().instance(rel).stats()),
            // With tombstones, rebuild exact stats from the effective view.
            // Stats are advisory (plan choice only), so the scan cost is
            // paid rarely — and only by deletes-carrying overlays.
            Some(_) => {
                let mut tuples = Vec::new();
                self.scan(rel, &mut |t| {
                    tuples.push(t.clone());
                    true
                });
                crate::database::Instance::from_tuples(tuples).stats()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    fn collect_scan<S: TupleStore>(s: &S, rel: RelId) -> Vec<Tuple> {
        let mut out = Vec::new();
        s.scan(rel, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    fn collect_probe<S: TupleStore>(s: &S, rel: RelId, col: usize, v: &Value) -> Vec<Tuple> {
        let mut out = Vec::new();
        s.probe(rel, col, v, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    #[test]
    fn database_scan_and_probe_agree() {
        let mut db = Database::with_relations(1);
        for pair in [[1, 2], [1, 3], [2, 3]] {
            db.insert(RelId(0), t(&pair.map(i64::from)));
        }
        assert_eq!(collect_scan(&db, RelId(0)).len(), 3);
        assert_eq!(
            collect_probe(&db, RelId(0), 0, &Value::int(1)),
            vec![t(&[1, 2]), t(&[1, 3])]
        );
    }

    #[test]
    fn overlay_probe_deduplicates_and_scans_union() {
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1, 2]));
        let mut delta = Database::with_relations(1);
        delta.insert(RelId(0), t(&[1, 2])); // duplicate of base
        delta.insert(RelId(0), t(&[1, 9])); // novel
        let ov = Overlay::new(&base, &delta).unwrap();
        assert_eq!(
            collect_probe(&ov, RelId(0), 0, &Value::int(1)),
            vec![t(&[1, 2]), t(&[1, 9])]
        );
        assert_eq!(collect_scan(&ov, RelId(0)).len(), 2);
        assert_eq!(TupleStore::rel_len(&ov, RelId(0)), 2);
    }

    #[test]
    fn tombstoned_tuples_filtered_from_scan_probe_and_stats() {
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1, 2]));
        base.insert(RelId(0), t(&[1, 3]));
        base.insert(RelId(0), t(&[2, 3]));
        // Regression: warm the base's per-column index *before* building the
        // overlay — the stale index still lists the tombstoned tuple, and
        // the probe path must re-check every hit against the deletes side.
        let warm = collect_probe(&base, RelId(0), 0, &Value::int(1));
        assert_eq!(warm.len(), 2);
        let mut deletes = Database::with_relations(1);
        deletes.insert(RelId(0), t(&[1, 3]));
        let mut delta = Database::with_relations(1);
        delta.insert(RelId(0), t(&[1, 9]));
        let ov = Overlay::with_deletes(&base, &delta, &deletes).unwrap();
        assert_eq!(
            collect_probe(&ov, RelId(0), 0, &Value::int(1)),
            vec![t(&[1, 2]), t(&[1, 9])],
            "stale base index must not leak the tombstoned (1,3)"
        );
        assert_eq!(
            collect_scan(&ov, RelId(0)),
            vec![t(&[1, 2]), t(&[2, 3]), t(&[1, 9])],
            "live base tuples in order, then the novel delta tuple"
        );
        assert_eq!(TupleStore::rel_len(&ov, RelId(0)), 3);
        let stats = TupleStore::stats(&ov, RelId(0));
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.distinct, vec![2, 3]);
        assert!(!ov.contains(RelId(0), &t(&[1, 3])));
    }

    #[test]
    fn deletes_early_exit_propagates_through_live_filter() {
        let mut base = Database::with_relations(1);
        base.insert(RelId(0), t(&[1]));
        base.insert(RelId(0), t(&[2]));
        base.insert(RelId(0), t(&[3]));
        let mut deletes = Database::with_relations(1);
        deletes.insert(RelId(0), t(&[1]));
        let delta = Database::with_relations(1);
        let ov = Overlay::with_deletes(&base, &delta, &deletes).unwrap();
        let mut seen = 0;
        let completed = ov.scan(RelId(0), &mut |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1, "the tombstoned tuple must not reach the visitor");
    }

    #[test]
    fn early_exit_propagates() {
        let mut db = Database::with_relations(1);
        db.insert(RelId(0), t(&[1]));
        db.insert(RelId(0), t(&[2]));
        let mut seen = 0;
        let completed = db.scan(RelId(0), &mut |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1);
    }
}

//! Tuples, instances, and databases.
//!
//! Instances use set semantics with deterministic (ordered) iteration so that
//! valuation enumeration in the deciders is reproducible run to run. The
//! containment order `D ⊆ D′` (Section 2.1) and extension construction
//! (`D ∪ Δ`) are the operations the completeness definitions are built on.

use crate::error::DataError;
use crate::index::ColumnIndex;
use crate::schema::{RelId, Schema};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

/// A tuple: an ordered list of constants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(pub Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// The empty (nullary) tuple `()` — Boolean query results.
    pub fn unit() -> Self {
        Tuple(Box::new([]))
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project onto the given column positions.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Field access.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Iterate the fields.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs)
    }
}

impl Tuple {
    fn fmt_parenthesised(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_parenthesised(f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_parenthesised(f)
    }
}

/// An instance of a single relation: a set of tuples.
///
/// Carries a lazily built per-column hash index ([`Instance::index`]) for the
/// evaluators' joins; the cache is dropped on every mutation and excluded
/// from equality, ordering, cloning, and `Debug` (two semantically equal
/// instances render identically whether or not their index is warm — the
/// structural fingerprints hash the `Debug` form).
#[derive(Default)]
pub struct Instance {
    tuples: BTreeSet<Tuple>,
    index: OnceLock<ColumnIndex>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.tuples.iter()).finish()
    }
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        // The index is derived data; a clone starts without one.
        Instance {
            tuples: self.tuples.clone(),
            index: OnceLock::new(),
        }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for Instance {}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Build from tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Instance {
            tuples: tuples.into_iter().collect(),
            index: OnceLock::new(),
        }
    }

    /// The per-column hash index over the current tuples, built on first use
    /// and invalidated by any mutation.
    pub fn index(&self) -> &ColumnIndex {
        self.index
            .get_or_init(|| ColumnIndex::build(self.tuples.iter()))
    }

    /// Insert a tuple; returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.index.take();
        self.tuples.insert(t)
    }

    /// Remove a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.index.take();
        self.tuples.remove(t)
    }

    /// Remove every tuple.
    pub fn clear(&mut self) {
        self.index.take();
        self.tuples.clear();
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &Instance) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Instance) {
        if other.is_empty() {
            return;
        }
        self.index.take();
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
    }
}

impl FromIterator<Tuple> for Instance {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Instance::from_tuples(iter)
    }
}

/// A database: one [`Instance`] per relation of a [`Schema`].
///
/// The schema itself is *not* owned by the database; all operations that need
/// schema information take it as a parameter. This keeps `Database` a plain
/// value type that is cheap to clone and compare. The deciders' hot loops no
/// longer clone candidate extensions — they layer an
/// [`Overlay`](crate::Overlay) over a shared base instead — but cloning
/// remains cheap for the places that still materialize.
pub struct Database {
    instances: Vec<Instance>,
    /// Cached active domain; dropped on mutation (see
    /// [`Database::active_domain`]).
    adom: OnceLock<BTreeSet<Value>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The adom cache is derived data; like equality, rendering ignores
        // it so warm and cold databases with the same tuples print (and
        // fingerprint) identically.
        f.debug_list().entries(self.instances.iter()).finish()
    }
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            instances: self.instances.clone(),
            adom: OnceLock::new(),
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.instances == other.instances
    }
}

impl Eq for Database {}

impl Database {
    /// The empty database over a schema with `n` relations.
    pub fn empty(schema: &Schema) -> Self {
        Database::with_relations(schema.len())
    }

    /// The empty database over `n` relations (schema-free construction).
    pub fn with_relations(n: usize) -> Self {
        Database {
            instances: vec![Instance::new(); n],
            adom: OnceLock::new(),
        }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Is the database empty of relations?
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.instances.iter().map(Instance::len).sum()
    }

    /// Are all instances empty?
    pub fn is_all_empty(&self) -> bool {
        self.instances.iter().all(Instance::is_empty)
    }

    /// The instance of a relation.
    pub fn instance(&self, id: RelId) -> &Instance {
        &self.instances[id.0]
    }

    /// Mutable access to the instance of a relation. Conservatively drops the
    /// cached active domain (the caller may mutate through the reference).
    pub fn instance_mut(&mut self, id: RelId) -> &mut Instance {
        self.adom.take();
        &mut self.instances[id.0]
    }

    /// Insert a tuple, checking arity and finite-domain membership against the
    /// schema.
    pub fn insert_checked(
        &mut self,
        schema: &Schema,
        id: RelId,
        t: Tuple,
    ) -> Result<bool, DataError> {
        let rel = schema.relation(id)?;
        if t.arity() != rel.arity() {
            return Err(DataError::ArityMismatch {
                rel: id,
                expected: rel.arity(),
                got: t.arity(),
            });
        }
        for (col, (v, a)) in t.iter().zip(rel.attributes.iter()).enumerate() {
            if !a.domain.admits(v) {
                return Err(DataError::DomainViolation {
                    rel: id,
                    col,
                    value: v.to_string(),
                });
            }
        }
        self.adom.take();
        Ok(self.instances[id.0].insert(t))
    }

    /// Insert a tuple without schema checks (used by internal algorithms that
    /// construct tuples from schema-derived templates).
    pub fn insert(&mut self, id: RelId, t: Tuple) -> bool {
        self.adom.take();
        self.instances[id.0].insert(t)
    }

    /// Remove every tuple from every relation (the relations themselves
    /// remain). Used by the deciders to recycle scratch deltas without
    /// reallocating per candidate.
    pub fn clear_tuples(&mut self) {
        self.adom.take();
        for inst in &mut self.instances {
            inst.clear();
        }
    }

    /// `self ⊆ other` component-wise (Section 2.1).
    pub fn is_contained_in(&self, other: &Database) -> bool {
        self.instances.len() == other.instances.len()
            && self
                .instances
                .iter()
                .zip(other.instances.iter())
                .all(|(a, b)| a.is_subset(b))
    }

    /// `self ∪ other`, the canonical *extension* construction `D ∪ Δ`.
    pub fn union(&self, other: &Database) -> Result<Database, DataError> {
        if self.instances.len() != other.instances.len() {
            return Err(DataError::SchemaMismatch);
        }
        let mut out = self.clone();
        for (mine, theirs) in out.instances.iter_mut().zip(other.instances.iter()) {
            mine.union_with(theirs);
        }
        Ok(out)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Database) -> Result<(), DataError> {
        if self.instances.len() != other.instances.len() {
            return Err(DataError::SchemaMismatch);
        }
        self.adom.take();
        for (mine, theirs) in self.instances.iter_mut().zip(other.instances.iter()) {
            mine.union_with(theirs);
        }
        Ok(())
    }

    /// The tuples of `self` missing from `other`, per relation — `self \ other`.
    pub fn difference(&self, other: &Database) -> Result<Database, DataError> {
        if self.instances.len() != other.instances.len() {
            return Err(DataError::SchemaMismatch);
        }
        let mut out = Database::with_relations(self.instances.len());
        for (i, (mine, theirs)) in self
            .instances
            .iter()
            .zip(other.instances.iter())
            .enumerate()
        {
            for t in mine.iter() {
                if !theirs.contains(t) {
                    out.instances[i].insert(t.clone());
                }
            }
        }
        Ok(out)
    }

    /// All constants appearing anywhere in the database (the *active
    /// domain*). Computed once and cached; mutation drops the cache. Repeat
    /// callers (`Adom::build`, the FO evaluator) previously rebuilt this set
    /// on every call.
    pub fn active_domain(&self) -> &BTreeSet<Value> {
        self.adom.get_or_init(|| {
            let mut out = BTreeSet::new();
            for inst in &self.instances {
                for t in inst.iter() {
                    for v in t.iter() {
                        out.insert(v.clone());
                    }
                }
            }
            out
        })
    }

    /// Iterate `(RelId, &Instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Instance)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (RelId(i), inst))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, inst) in self.iter() {
            write!(f, "{id}: {{")?;
            for (i, t) in inst.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};

    fn schema() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a", "b"]),
            RelationSchema::new("B", vec![Attribute::boolean("x")]),
        ])
        .unwrap()
    }

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn insert_checked_validates_arity_and_domain() {
        let s = schema();
        let mut d = Database::empty(&s);
        let r = s.rel_id("R").unwrap();
        let b = s.rel_id("B").unwrap();
        assert!(d.insert_checked(&s, r, t(&[1, 2])).unwrap());
        assert!(!d.insert_checked(&s, r, t(&[1, 2])).unwrap()); // duplicate
        assert!(matches!(
            d.insert_checked(&s, r, t(&[1])),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(d.insert_checked(&s, b, t(&[1])).unwrap());
        assert!(matches!(
            d.insert_checked(&s, b, t(&[7])),
            Err(DataError::DomainViolation { .. })
        ));
    }

    #[test]
    fn containment_and_union() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut d1 = Database::empty(&s);
        d1.insert(r, t(&[1, 2]));
        let mut d2 = d1.clone();
        d2.insert(r, t(&[3, 4]));
        assert!(d1.is_contained_in(&d2));
        assert!(!d2.is_contained_in(&d1));
        let u = d1.union(&d2).unwrap();
        assert_eq!(u, d2);
        assert_eq!(u.tuple_count(), 2);
    }

    #[test]
    fn difference_yields_missing_tuples() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut d1 = Database::empty(&s);
        d1.insert(r, t(&[1, 2]));
        let mut d2 = d1.clone();
        d2.insert(r, t(&[3, 4]));
        let diff = d2.difference(&d1).unwrap();
        assert_eq!(diff.tuple_count(), 1);
        assert!(diff.instance(r).contains(&t(&[3, 4])));
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut d = Database::empty(&s);
        d.insert(r, t(&[1, 2]));
        d.insert(r, t(&[2, 3]));
        let adom = d.active_domain();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Value::int(3)));
    }

    #[test]
    fn tuple_projection() {
        let x = t(&[10, 20, 30]);
        assert_eq!(x.project(&[2, 0]), t(&[30, 10]));
        assert_eq!(Tuple::unit().arity(), 0);
    }

    #[test]
    fn schema_mismatch_detected() {
        let d1 = Database::with_relations(1);
        let d2 = Database::with_relations(2);
        assert!(d1.union(&d2).is_err());
        assert!(!d1.is_contained_in(&d2));
    }
}

//! Per-column hash indexes over relation instances.
//!
//! An [`Instance`](crate::Instance) stores its tuples in an ordered set; the
//! evaluators' joins need the complementary access path "all tuples with
//! value `v` in column `c`". A [`ColumnIndex`] is a snapshot of one instance
//! with one hash map per column, built lazily on first probe and discarded on
//! mutation. Tuple ids are positions in the snapshot, which preserves the
//! instance's deterministic (ordered) iteration order — index-joined
//! evaluation visits tuples in the same order a scan would.
//!
//! Probes are counted per thread ([`probe_count`]) so the deciders can
//! report an exact `index.probe` telemetry counter without threading state
//! through the storage layer: a decision snapshots its own thread's counter
//! before and after, and concurrent decisions on other threads cannot inflate
//! the figure. Parallel deciders snapshot on each worker thread and sum.

use crate::database::Tuple;
use crate::value::Value;
use std::cell::Cell;
use std::collections::HashMap;

thread_local! {
    static PROBES: Cell<u64> = const { Cell::new(0) };
}

/// Total number of index probes served *by the calling thread*. Monotone per
/// thread; callers that want a per-decision figure snapshot it before and
/// after on the thread(s) doing the probing.
pub fn probe_count() -> u64 {
    PROBES.with(Cell::get)
}

const NO_MATCHES: &[u32] = &[];

/// A per-column hash index over a snapshot of one instance's tuples.
#[derive(Debug, Default)]
pub struct ColumnIndex {
    tuples: Vec<Tuple>,
    /// `by_col[c][v]` — snapshot positions of tuples with value `v` in column
    /// `c`, in snapshot (i.e. instance iteration) order. Tuples of arity
    /// `≤ c` simply do not appear in `by_col[c]`.
    by_col: Vec<HashMap<Value, Vec<u32>>>,
}

impl ColumnIndex {
    /// Build from tuples in iteration order.
    pub(crate) fn build<'a>(tuples: impl Iterator<Item = &'a Tuple>) -> Self {
        let tuples: Vec<Tuple> = tuples.cloned().collect();
        let max_arity = tuples.iter().map(Tuple::arity).max().unwrap_or(0);
        let mut by_col: Vec<HashMap<Value, Vec<u32>>> = vec![HashMap::new(); max_arity];
        for (id, t) in tuples.iter().enumerate() {
            for (col, v) in t.iter().enumerate() {
                by_col[col].entry(v.clone()).or_default().push(id as u32);
            }
        }
        ColumnIndex { tuples, by_col }
    }

    /// Snapshot positions of tuples with `v` at column `col`, in iteration
    /// order. Empty when the column exceeds every arity or the value is
    /// absent. Each call counts one probe.
    pub fn probe(&self, col: usize, v: &Value) -> &[u32] {
        PROBES.with(|p| p.set(p.get() + 1));
        match self.by_col.get(col).and_then(|m| m.get(v)) {
            Some(ids) => ids,
            None => NO_MATCHES,
        }
    }

    /// The tuple at a snapshot position returned by [`ColumnIndex::probe`].
    pub fn tuple(&self, id: u32) -> &Tuple {
        &self.tuples[id as usize]
    }

    /// The full snapshot, in iteration order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of indexed columns (the widest tuple's arity).
    pub fn n_cols(&self) -> usize {
        self.by_col.len()
    }

    /// Number of distinct values in column `col` (0 when the column exceeds
    /// every tuple's arity). Reading a statistic is not a probe and is not
    /// counted as one.
    pub fn distinct(&self, col: usize) -> usize {
        self.by_col.get(col).map(HashMap::len).unwrap_or(0)
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn probe_finds_matches_in_iteration_order() {
        let inst = Instance::from_tuples([t(&[1, 2]), t(&[1, 3]), t(&[2, 3])]);
        let idx = inst.index();
        let hits = idx.probe(0, &Value::int(1));
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.tuple(hits[0]), &t(&[1, 2]));
        assert_eq!(idx.tuple(hits[1]), &t(&[1, 3]));
        assert_eq!(idx.probe(1, &Value::int(3)).len(), 2);
        assert!(idx.probe(0, &Value::int(9)).is_empty());
        assert!(idx.probe(7, &Value::int(1)).is_empty());
    }

    #[test]
    fn mixed_arities_index_existing_columns_only() {
        let inst = Instance::from_tuples([t(&[5]), t(&[5, 6])]);
        let idx = inst.index();
        assert_eq!(idx.probe(0, &Value::int(5)).len(), 2);
        assert_eq!(idx.probe(1, &Value::int(6)).len(), 1);
    }

    #[test]
    fn mutation_invalidates_the_index() {
        let mut inst = Instance::from_tuples([t(&[1, 2])]);
        assert_eq!(inst.index().probe(0, &Value::int(1)).len(), 1);
        inst.insert(t(&[1, 9]));
        assert_eq!(inst.index().probe(0, &Value::int(1)).len(), 2);
        inst.remove(&t(&[1, 2]));
        assert_eq!(inst.index().probe(0, &Value::int(1)).len(), 1);
    }

    #[test]
    fn probes_are_counted() {
        let inst = Instance::from_tuples([t(&[1, 2])]);
        let before = probe_count();
        inst.index().probe(0, &Value::int(1));
        inst.index().probe(1, &Value::int(2));
        assert_eq!(probe_count(), before + 2);
    }

    #[test]
    fn probe_counts_are_per_thread() {
        let inst = Instance::from_tuples([t(&[1, 2])]);
        let before = probe_count();
        std::thread::scope(|s| {
            s.spawn(|| {
                let other_before = probe_count();
                for _ in 0..100 {
                    inst.index().probe(0, &Value::int(1));
                }
                assert_eq!(probe_count(), other_before + 100);
            });
        });
        // The other thread's 100 probes must not leak into this thread's
        // counter.
        assert_eq!(probe_count(), before);
    }
}

//! Constants.
//!
//! The paper fixes two domains: a countably infinite domain `d` and a finite
//! domain `d_f` with at least two elements (Section 2.1). We realise both with
//! a single [`Value`] type; *which* domain an attribute draws from is recorded
//! in the schema ([`crate::DomainKind`]), not in the value itself.

use std::fmt;
use std::sync::Arc;

/// A constant appearing in a database, master data, query, or constraint.
///
/// `Int` covers the countably infinite domain; `Str` exists so that examples
/// and scenario data can use readable constants (`"e0"`, `"NJ"`, …). The two
/// variants never compare equal.
///
/// String payloads built through [`Value::str`] (and the `From` impls) are
/// interned in the process-wide pool ([`crate::intern`]), so equal strings
/// share one allocation and equality usually resolves by pointer.
// The manual `PartialEq` below only short-circuits on pointer identity —
// ptr-equal Arcs hold equal bytes — so it decides exactly what the derived
// impl would, and the derived `Hash` stays consistent with it.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant (cheaply clonable).
    Str(Arc<str>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            // Interned strings share an allocation, so the pointer comparison
            // settles the common case without touching the bytes.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Build a string value (interned).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(crate::intern::intern_str(s.as_ref()))
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_str_are_distinct() {
        assert_ne!(Value::int(0), Value::str("0"));
    }

    #[test]
    fn values_order_deterministically() {
        let mut v = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::str("y").as_str(), Some("y"));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("y").as_int(), None);
    }

    #[test]
    fn equal_strings_share_one_allocation() {
        let a = Value::str("interned-constant");
        let b = Value::from(String::from("interned-constant"));
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        assert_eq!(a, b);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("NJ").to_string(), "NJ");
        assert_eq!(format!("{:?}", Value::str("NJ")), "\"NJ\"");
    }
}

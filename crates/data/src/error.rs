//! Errors for the relational substrate.

use crate::schema::RelId;
use std::fmt;

/// Errors raised when constructing or manipulating schemas and databases.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DataError {
    /// Two relations with the same name in one schema.
    DuplicateRelation(String),
    /// A relation id that does not exist in the schema.
    UnknownRelation(RelId),
    /// A column index beyond the relation's arity.
    ColumnOutOfRange {
        /// Offending relation.
        rel: RelId,
        /// Requested column.
        col: usize,
        /// Actual arity.
        arity: usize,
    },
    /// A tuple whose arity does not match its relation schema.
    ArityMismatch {
        /// Offending relation.
        rel: RelId,
        /// Expected arity.
        expected: usize,
        /// Arity of the inserted tuple.
        got: usize,
    },
    /// A value outside the declared (finite) domain of its column.
    DomainViolation {
        /// Offending relation.
        rel: RelId,
        /// Offending column.
        col: usize,
        /// The rejected value, rendered.
        value: String,
    },
    /// Two databases over different schemas were combined.
    SchemaMismatch,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateRelation(n) => write!(f, "duplicate relation name `{n}`"),
            DataError::UnknownRelation(id) => write!(f, "unknown relation {id}"),
            DataError::ColumnOutOfRange { rel, col, arity } => {
                write!(f, "column {col} out of range for {rel} (arity {arity})")
            }
            DataError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "arity mismatch for {rel}: expected {expected}, got {got}"
                )
            }
            DataError::DomainViolation { rel, col, value } => {
                write!(
                    f,
                    "value {value} outside the finite domain of {rel} column {col}"
                )
            }
            DataError::SchemaMismatch => write!(f, "databases are over different schemas"),
        }
    }
}

impl std::error::Error for DataError {}

//! Per-relation statistics for cost-based planning.
//!
//! A [`RelStats`] summarizes one relation instance: its cardinality and the
//! number of distinct values per column. The planner in `ric-plan` estimates
//! join output cardinalities from these two figures alone (the classic
//! uniform-selectivity model: an equality predicate on column `c` keeps
//! `rows / distinct(c)` tuples).
//!
//! Statistics are *derived* data, computed from the instance's lazily built
//! [`ColumnIndex`](crate::ColumnIndex) — distinct counts are exactly the
//! per-column key counts of the index — so they share its invalidation
//! discipline for free: any mutation drops the index, and the next `stats`
//! call recomputes both. They are estimates for *planning only*: a stale or
//! wrong figure can change join order (timing), never answers.

use crate::database::Instance;

/// Cardinality and per-column distinct counts of one relation instance.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RelStats {
    /// Number of tuples in the instance.
    pub rows: usize,
    /// `distinct[c]` — number of distinct values in column `c`, over the
    /// tuples that have a column `c` (mixed arities index what they have).
    pub distinct: Vec<usize>,
}

impl RelStats {
    /// Stats of an empty relation (what a planner sees when no data has been
    /// loaded yet — the "no statistics" fallback case).
    pub fn empty() -> Self {
        RelStats::default()
    }

    /// Are there any rows to estimate from?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Distinct count of `col`, defaulting to 1 for columns past the widest
    /// tuple (a probe there matches nothing, but the estimate stays sane).
    pub fn distinct_at(&self, col: usize) -> usize {
        self.distinct.get(col).copied().unwrap_or(1).max(1)
    }

    /// Estimated fraction of rows surviving an equality predicate on `col`
    /// (uniform-distribution assumption: `1 / distinct(col)`).
    pub fn selectivity(&self, col: usize) -> f64 {
        1.0 / self.distinct_at(col) as f64
    }

    /// Combine with the stats of a delta overlaid on this relation: rows add
    /// (an upper bound — overlapping tuples count twice), distinct counts
    /// take the max of the two sides (a lower bound). Both biases are safe:
    /// stats only steer plan choice.
    pub fn overlaid(&self, delta: &RelStats) -> RelStats {
        let cols = self.distinct.len().max(delta.distinct.len());
        RelStats {
            rows: self.rows + delta.rows,
            distinct: (0..cols)
                .map(|c| {
                    self.distinct
                        .get(c)
                        .copied()
                        .unwrap_or(0)
                        .max(delta.distinct.get(c).copied().unwrap_or(0))
                })
                .collect(),
        }
    }
}

impl Instance {
    /// Statistics over the current tuples, read off the (lazily built,
    /// mutation-invalidated) column index.
    pub fn stats(&self) -> RelStats {
        let idx = self.index();
        RelStats {
            rows: idx.len(),
            distinct: (0..idx.n_cols()).map(|c| idx.distinct(c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Tuple;
    use crate::value::Value;

    fn t(vs: &[i64]) -> Tuple {
        Tuple::new(vs.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn stats_count_rows_and_distinct_values() {
        let inst = Instance::from_tuples([t(&[1, 2]), t(&[1, 3]), t(&[2, 3])]);
        let s = inst.stats();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct, vec![2, 2]);
        assert_eq!(s.distinct_at(0), 2);
        assert_eq!(s.distinct_at(9), 1, "out-of-range column defaults to 1");
        assert!((s.selectivity(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mutation_refreshes_stats() {
        let mut inst = Instance::from_tuples([t(&[1, 2])]);
        assert_eq!(inst.stats().rows, 1);
        inst.insert(t(&[3, 4]));
        let s = inst.stats();
        assert_eq!(s.rows, 2);
        assert_eq!(s.distinct, vec![2, 2]);
    }

    #[test]
    fn empty_stats_are_the_fallback_shape() {
        let s = Instance::new().stats();
        assert!(s.is_empty());
        assert_eq!(s, RelStats::empty());
        assert_eq!(s.distinct_at(0), 1);
    }

    #[test]
    fn overlay_combination_is_monotone() {
        let base = RelStats {
            rows: 10,
            distinct: vec![5, 2],
        };
        let delta = RelStats {
            rows: 3,
            distinct: vec![3, 4, 2],
        };
        let c = base.overlaid(&delta);
        assert_eq!(c.rows, 13);
        assert_eq!(c.distinct, vec![5, 4, 2]);
    }
}

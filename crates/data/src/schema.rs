//! Relational schemas.
//!
//! A database is specified by a relational schema `R = (R_1, …, R_n)`; master
//! data by a schema `R_m` (Section 2.1). Each attribute declares its domain:
//! the countably infinite domain `d` or a finite domain `d_f` with at least
//! two elements. The deciders in `ric-complete` consult these declarations
//! when building active domains for variables (`adom(y)`, Section 3.2).

use crate::error::DataError;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Identifies a relation inside a [`Schema`] by position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub usize);

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// The domain an attribute draws its values from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// The countably infinite domain `d`.
    Infinite,
    /// A finite domain `d_f`; the paper requires at least two elements.
    Finite(Arc<[Value]>),
}

impl DomainKind {
    /// A finite domain from an explicit value list.
    pub fn finite(values: impl IntoIterator<Item = Value>) -> Self {
        DomainKind::Finite(values.into_iter().collect())
    }

    /// The Boolean domain `{0, 1}`, ubiquitous in the hardness reductions.
    pub fn boolean() -> Self {
        DomainKind::finite([Value::int(0), Value::int(1)])
    }

    /// Is this the infinite domain?
    pub fn is_infinite(&self) -> bool {
        matches!(self, DomainKind::Infinite)
    }

    /// The values of a finite domain, or `None` for the infinite domain.
    pub fn finite_values(&self) -> Option<&[Value]> {
        match self {
            DomainKind::Infinite => None,
            DomainKind::Finite(vs) => Some(vs),
        }
    }

    /// Does the domain admit `v`? (The infinite domain admits everything.)
    pub fn admits(&self, v: &Value) -> bool {
        match self {
            DomainKind::Infinite => true,
            DomainKind::Finite(vs) => vs.contains(v),
        }
    }
}

/// A named, typed attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared domain.
    pub domain: DomainKind,
}

impl Attribute {
    /// An attribute over the infinite domain.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            domain: DomainKind::Infinite,
        }
    }

    /// An attribute over an explicit finite domain.
    pub fn finite(name: impl Into<String>, values: impl IntoIterator<Item = Value>) -> Self {
        Attribute {
            name: name.into(),
            domain: DomainKind::finite(values),
        }
    }

    /// A Boolean attribute.
    pub fn boolean(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            domain: DomainKind::boolean(),
        }
    }
}

/// A relation schema: a name plus an ordered attribute list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationSchema {
    /// Relation name, unique within its [`Schema`].
    pub name: String,
    /// Ordered attributes.
    pub attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Build a relation schema.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// Convenience: all attributes over the infinite domain.
    pub fn infinite(name: impl Into<String>, attrs: &[&str]) -> Self {
        RelationSchema::new(name, attrs.iter().map(|a| Attribute::new(*a)).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

/// A relational schema `R = (R_1, …, R_n)`.
///
/// Used for both the database schema `R` and the master-data schema `R_m`;
/// the two are kept as *separate* `Schema` values throughout the workspace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    relations: Vec<RelationSchema>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build from a relation list, validating name uniqueness.
    pub fn from_relations(relations: Vec<RelationSchema>) -> Result<Self, DataError> {
        let mut s = Schema::new();
        for r in relations {
            s.add_relation(r)?;
        }
        Ok(s)
    }

    /// Add a relation; fails on a duplicate name.
    pub fn add_relation(&mut self, rel: RelationSchema) -> Result<RelId, DataError> {
        if self.relations.iter().any(|r| r.name == rel.name) {
            return Err(DataError::DuplicateRelation(rel.name));
        }
        self.relations.push(rel);
        Ok(RelId(self.relations.len() - 1))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look up a relation schema by id.
    pub fn relation(&self, id: RelId) -> Result<&RelationSchema, DataError> {
        self.relations
            .get(id.0)
            .ok_or(DataError::UnknownRelation(id))
    }

    /// Look up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(RelId)
    }

    /// Iterate `(RelId, &RelationSchema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), r))
    }

    /// Arity of a relation.
    pub fn arity(&self, id: RelId) -> Result<usize, DataError> {
        Ok(self.relation(id)?.arity())
    }

    /// The declared domain of column `col` of relation `id`.
    pub fn domain(&self, id: RelId, col: usize) -> Result<&DomainKind, DataError> {
        let rel = self.relation(id)?;
        rel.attributes
            .get(col)
            .map(|a| &a.domain)
            .ok_or(DataError::ColumnOutOfRange {
                rel: id,
                col,
                arity: rel.arity(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
            RelationSchema::new("Flag", vec![Attribute::boolean("b"), Attribute::new("x")]),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        let supt = s.rel_id("Supt").unwrap();
        assert_eq!(supt, RelId(0));
        assert_eq!(s.relation(supt).unwrap().arity(), 3);
        assert_eq!(s.relation(supt).unwrap().attr_index("cid"), Some(2));
        assert!(s.rel_id("Nope").is_none());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = sample();
        let err = s
            .add_relation(RelationSchema::infinite("Supt", &["a"]))
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateRelation(_)));
    }

    #[test]
    fn domains() {
        let s = sample();
        let flag = s.rel_id("Flag").unwrap();
        assert!(!s.domain(flag, 0).unwrap().is_infinite());
        assert!(s.domain(flag, 1).unwrap().is_infinite());
        assert!(s.domain(flag, 2).is_err());
        let b = s.domain(flag, 0).unwrap();
        assert!(b.admits(&Value::int(0)));
        assert!(!b.admits(&Value::int(2)));
        assert_eq!(b.finite_values().unwrap().len(), 2);
    }

    #[test]
    fn unknown_relation_id() {
        let s = sample();
        assert!(s.relation(RelId(99)).is_err());
    }
}

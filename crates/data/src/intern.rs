//! Value interning.
//!
//! String constants flow through every layer of the decision stack — they are
//! cloned into candidate tuples, hashed into indexes, and compared millions of
//! times during valuation enumeration. Interning gives every distinct string a
//! single shared allocation (so clones are reference-count bumps and equality
//! can short-circuit on pointer identity) and a dense [`Sym`] id (so callers
//! that want `u32` keys — per-setting lookup tables, dense bitsets — can have
//! them without re-hashing the text).
//!
//! Two pools are provided:
//!
//! * a **global** pool behind [`intern_str`] / [`intern`] / [`resolve`], used
//!   by [`Value::str`](crate::Value::str) so that equal string constants share
//!   one `Arc<str>` process-wide;
//! * **per-setting** pools: any number of private [`Interner`]s, for callers
//!   that want ids dense in *their* universe (e.g. one decision setting)
//!   rather than the whole process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A dense id for an interned string. Ids are only meaningful relative to the
/// pool that issued them (the global pool for [`intern`], a specific
/// [`Interner`] otherwise).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

impl Sym {
    /// The raw id.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A string interning pool: each distinct string gets one shared allocation
/// and one dense [`Sym`] id.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty pool.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its id (allocating one if unseen).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.ids.get(s) {
            return Sym(id);
        }
        let id = self.strings.len() as u32;
        let shared: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        Sym(id)
    }

    /// Intern `s`, returning the pool's shared allocation for it.
    pub fn intern_arc(&mut self, s: &str) -> Arc<str> {
        let sym = self.intern(s);
        Arc::clone(&self.strings[sym.idx()])
    }

    /// The id of `s`, if it has been interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.ids.get(s).map(|&id| Sym(id))
    }

    /// The string behind `sym`. `None` when the id was issued by a different
    /// pool (or fabricated).
    pub fn resolve(&self, sym: Sym) -> Option<&Arc<str>> {
        self.strings.get(sym.idx())
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

fn global() -> std::sync::MutexGuard<'static, Interner> {
    static POOL: OnceLock<Mutex<Interner>> = OnceLock::new();
    // The interner is append-only, so a panic mid-insert cannot leave it in
    // a state a later caller would misread — recover from poison.
    POOL.get_or_init(|| Mutex::new(Interner::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Intern `s` in the global pool, returning the shared allocation. Equal
/// strings interned anywhere in the process return clones of the same `Arc`,
/// so equality checks between them can short-circuit on pointer identity.
pub fn intern_str(s: &str) -> Arc<str> {
    global().intern_arc(s)
}

/// Intern `s` in the global pool, returning its [`Sym`].
pub fn intern(s: &str) -> Sym {
    global().intern(s)
}

/// The global-pool string behind `sym`.
pub fn resolve(sym: Sym) -> Option<Arc<str>> {
    global().resolve(sym).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_issues_dense_stable_ids() {
        let mut pool = Interner::new();
        let a = pool.intern("alpha");
        let b = pool.intern("beta");
        let a2 = pool.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.idx(), 0);
        assert_eq!(b.idx(), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a).unwrap().as_ref(), "alpha");
        assert_eq!(pool.get("beta"), Some(b));
        assert_eq!(pool.get("gamma"), None);
        assert_eq!(pool.resolve(Sym(99)), None);
    }

    #[test]
    fn interned_arcs_share_allocation() {
        let mut pool = Interner::new();
        let x = pool.intern_arc("shared");
        let y = pool.intern_arc("shared");
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn global_pool_shares_across_calls() {
        let x = intern_str("ric-global-intern-test");
        let y = intern_str("ric-global-intern-test");
        assert!(Arc::ptr_eq(&x, &y));
        let sym = intern("ric-global-intern-test");
        assert_eq!(intern("ric-global-intern-test"), sym);
        assert_eq!(resolve(sym).unwrap().as_ref(), "ric-global-intern-test");
    }
}

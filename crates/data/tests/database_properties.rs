//! Property-based tests for the relational substrate: the containment order,
//! union/difference algebra, and active-domain bookkeeping the deciders rely
//! on.
//!
//! These suites need the external `proptest` crate, which is unavailable in
//! the offline build; enable the off-by-default `proptest` cargo feature to
//! run them (`cargo test --features proptest`).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_db()(r in proptest::collection::vec((0i64..8, 0i64..8), 0..10),
                s in proptest::collection::vec(0i64..8, 0..6)) -> Database {
        let sc = schema();
        let mut db = Database::empty(&sc);
        let rr = sc.rel_id("R").unwrap();
        let ss = sc.rel_id("S").unwrap();
        for (a, b) in r {
            db.insert(rr, Tuple::new([Value::int(a), Value::int(b)]));
        }
        for a in s {
            db.insert(ss, Tuple::new([Value::int(a)]));
        }
        db
    }
}

proptest! {
    /// `D ⊆ D ∪ Δ` and `Δ ⊆ D ∪ Δ`.
    #[test]
    fn union_is_an_upper_bound(d in arb_db(), delta in arb_db()) {
        let u = d.union(&delta).unwrap();
        prop_assert!(d.is_contained_in(&u));
        prop_assert!(delta.is_contained_in(&u));
    }

    /// Union is idempotent, commutative, and associative (set semantics).
    #[test]
    fn union_algebra(a in arb_db(), b in arb_db(), c in arb_db()) {
        prop_assert_eq!(a.union(&a).unwrap(), a.clone());
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        prop_assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
    }

    /// `(A ∪ B) \ A ⊆ B` and `A ∪ ((A ∪ B) \ A) = A ∪ B`.
    #[test]
    fn difference_recovers_the_extension(a in arb_db(), b in arb_db()) {
        let u = a.union(&b).unwrap();
        let diff = u.difference(&a).unwrap();
        prop_assert!(diff.is_contained_in(&b));
        prop_assert_eq!(a.union(&diff).unwrap(), u);
    }

    /// Containment is a partial order: reflexive, antisymmetric, transitive.
    #[test]
    fn containment_is_a_partial_order(a in arb_db(), b in arb_db(), c in arb_db()) {
        prop_assert!(a.is_contained_in(&a));
        if a.is_contained_in(&b) && b.is_contained_in(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        let ab = a.union(&b).unwrap();
        let abc = ab.union(&c).unwrap();
        prop_assert!(a.is_contained_in(&ab));
        prop_assert!(ab.is_contained_in(&abc));
        prop_assert!(a.is_contained_in(&abc));
    }

    /// The active domain of a union is the union of active domains.
    #[test]
    fn active_domain_distributes_over_union(a in arb_db(), b in arb_db()) {
        let u = a.union(&b).unwrap();
        let mut expected = a.active_domain();
        expected.extend(b.active_domain());
        prop_assert_eq!(u.active_domain(), expected);
    }

    /// Tuple counts: |A ∪ B| ≤ |A| + |B| with equality iff disjoint.
    #[test]
    fn union_tuple_count(a in arb_db(), b in arb_db()) {
        let u = a.union(&b).unwrap();
        prop_assert!(u.tuple_count() <= a.tuple_count() + b.tuple_count());
        prop_assert!(u.tuple_count() >= a.tuple_count().max(b.tuple_count()));
    }
}

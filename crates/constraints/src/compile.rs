//! Proposition 2.1: integrity constraints as containment constraints.
//!
//! * denial constraints → a single CC in CQ with `⊆ ∅`;
//! * CFDs → two families of CCs in CQ with `⊆ ∅` (pair violations and
//!   single-tuple pattern violations);
//! * INDs → CCs whose body is a projection;
//! * CINDs → a single CC in FO with `⊆ ∅`.
//!
//! In every case only an empty master relation is needed, so a database `D`
//! satisfies the original constraint iff `(D, D_m) |= compiled` for *any*
//! master data — consistency and relative completeness are enforced by one
//! uniform mechanism (Section 2.2).

use crate::cc::{CcBody, ContainmentConstraint, Projection};
use crate::classical::{Cfd, Cind, Denial, Fd, IndCc};
use ric_data::Schema;
use ric_query::{Atom, Cq, FoExpr, FoQuery, Term, Var};

/// Compile a denial constraint: the forbidden pattern, with every variable
/// exposed in the head, contained in `∅` (Proposition 2.1(a)).
pub fn denial_to_cc(d: &Denial) -> ContainmentConstraint {
    let mut q = d.pattern.clone();
    // Expose all variables: q(x̄_1, …, x̄_k) ⊆ ∅.
    let vars = q.all_vars();
    q.head = vars.into_iter().map(Term::Var).collect();
    ContainmentConstraint::into_empty(CcBody::Cq(q))
}

/// Compile a CFD into its CC set (Proposition 2.1(b)). Needs the relation's
/// arity, read from the schema.
pub fn cfd_to_ccs(cfd: &Cfd, schema: &Schema) -> Vec<ContainmentConstraint> {
    let arity = schema
        .arity(cfd.rel)
        .unwrap_or_else(|e| panic!("CFD relation must exist in the schema: {e}"));
    let mut out = Vec::new();

    // First family: two selected tuples agreeing on X but differing on one
    // Y column.
    for &ycol in &cfd.rhs {
        let mut b = Cq::builder();
        let t1: Vec<Var> = (0..arity).map(|c| b.var(&format!("a{c}"))).collect();
        let t2: Vec<Var> = (0..arity).map(|c| b.var(&format!("b{c}"))).collect();
        let mut builder = b
            .atom(cfd.rel, t1.iter().map(|&v| Term::Var(v)).collect())
            .atom(cfd.rel, t2.iter().map(|&v| Term::Var(v)).collect());
        for (c, val) in &cfd.lhs_pattern {
            builder = builder
                .eq(Term::Var(t1[*c]), Term::Const(val.clone()))
                .eq(Term::Var(t2[*c]), Term::Const(val.clone()));
        }
        for &xcol in &cfd.lhs {
            builder = builder.eq(Term::Var(t1[xcol]), Term::Var(t2[xcol]));
        }
        builder = builder.neq(Term::Var(t1[ycol]), Term::Var(t2[ycol]));
        let head: Vec<Term> = t1.iter().chain(t2.iter()).map(|&v| Term::Var(v)).collect();
        out.push(ContainmentConstraint::into_empty(CcBody::Cq(
            builder.head(head).build(),
        )));
    }

    // Second family: a selected tuple violating the RHS constant pattern.
    for (ycol, val) in &cfd.rhs_pattern {
        let mut b = Cq::builder();
        let t: Vec<Var> = (0..arity).map(|c| b.var(&format!("a{c}"))).collect();
        let mut builder = b.atom(cfd.rel, t.iter().map(|&v| Term::Var(v)).collect());
        for (c, pval) in &cfd.lhs_pattern {
            builder = builder.eq(Term::Var(t[*c]), Term::Const(pval.clone()));
        }
        builder = builder.neq(Term::Var(t[*ycol]), Term::Const(val.clone()));
        let head: Vec<Term> = t.iter().map(|&v| Term::Var(v)).collect();
        out.push(ContainmentConstraint::into_empty(CcBody::Cq(
            builder.head(head).build(),
        )));
    }
    out
}

/// Compile an FD (a pattern-free CFD).
pub fn fd_to_ccs(fd: &Fd, schema: &Schema) -> Vec<ContainmentConstraint> {
    cfd_to_ccs(&fd.as_cfd(), schema)
}

/// Compile an IND into a projection-bodied CC.
pub fn ind_to_cc(ind: &IndCc) -> ContainmentConstraint {
    let body = CcBody::Proj(Projection::new(ind.rel, ind.cols.clone()));
    match &ind.master {
        None => ContainmentConstraint::into_empty(body),
        Some((mrel, mcols)) => ContainmentConstraint::into_master(body, *mrel, mcols.clone()),
    }
}

/// Compile a CIND into a single CC in FO (Proposition 2.1(c)):
/// `q ⊆ ∅` with
/// `q(v̄_1) = R_1(v̄_1) ∧ φ(v̄_1) ∧ ∀v̄_2 ¬(R_2(v̄_2) ∧ x̄-match ∧ ψ(v̄_2))`.
pub fn cind_to_cc(cind: &Cind, schema: &Schema) -> ContainmentConstraint {
    let a1 = schema
        .arity(cind.lhs_rel)
        .unwrap_or_else(|e| panic!("CIND lhs relation must exist in the schema: {e}"));
    let a2 = schema
        .arity(cind.rhs_rel)
        .unwrap_or_else(|e| panic!("CIND rhs relation must exist in the schema: {e}"));
    let vars1: Vec<Var> = (0..a1).map(|i| Var(i as u32)).collect();
    let vars2: Vec<Var> = (0..a2).map(|i| Var((a1 + i) as u32)).collect();
    let mut names: Vec<String> = (0..a1).map(|i| format!("a{i}")).collect();
    names.extend((0..a2).map(|i| format!("b{i}")));

    let mut conj = vec![FoExpr::Atom(Atom::new(
        cind.lhs_rel,
        vars1.iter().map(|&v| Term::Var(v)).collect(),
    ))];
    for (c, val) in &cind.lhs_pattern {
        conj.push(FoExpr::Eq(Term::Var(vars1[*c]), Term::Const(val.clone())));
    }
    // ∀v̄_2 ¬(R_2(v̄_2) ∧ shared columns match ∧ ψ)
    let mut witness = vec![FoExpr::Atom(Atom::new(
        cind.rhs_rel,
        vars2.iter().map(|&v| Term::Var(v)).collect(),
    ))];
    for (lc, rc) in cind.lhs_cols.iter().zip(cind.rhs_cols.iter()) {
        witness.push(FoExpr::Eq(Term::Var(vars1[*lc]), Term::Var(vars2[*rc])));
    }
    for (c, val) in &cind.rhs_pattern {
        witness.push(FoExpr::Eq(Term::Var(vars2[*c]), Term::Const(val.clone())));
    }
    conj.push(FoExpr::Forall(
        vars2.clone(),
        Box::new(FoExpr::not(FoExpr::And(witness))),
    ));
    let q = FoQuery::new(vars1, FoExpr::And(conj), names);
    ContainmentConstraint::into_empty(CcBody::Fo(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::at_most_k_per_key;
    use ric_data::{Database, RelationSchema, Schema, Tuple, Value};

    fn supt_schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap()
    }

    fn t3(a: &str, b: &str, c: &str) -> Tuple {
        Tuple::new([Value::str(a), Value::str(b), Value::str(c)])
    }

    /// The empty master database used by all `⊆ ∅` compilations.
    fn empty_master() -> Database {
        Database::with_relations(0)
    }

    #[test]
    fn denial_compilation_agrees_with_direct_check() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let denial = at_most_k_per_key(supt, 0, 2, 1, 3);
        let cc = denial_to_cc(&denial);
        let dm = empty_master();
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d", "c0"));
        assert_eq!(denial.satisfied(&db), cc.satisfied(&db, &dm).unwrap());
        db.insert(supt, t3("e0", "d", "c1"));
        assert_eq!(denial.satisfied(&db), cc.satisfied(&db, &dm).unwrap());
        assert!(!denial.satisfied(&db));
    }

    #[test]
    fn fd_compilation_agrees_with_direct_check() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1, 2]);
        let ccs = fd_to_ccs(&fd, &s);
        assert_eq!(ccs.len(), 2); // one per dependent column
        let dm = empty_master();
        let check = |db: &Database| ccs.iter().all(|cc| cc.satisfied(db, &dm).unwrap());
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d0", "c0"));
        db.insert(supt, t3("e1", "d1", "c1"));
        assert_eq!(fd.satisfied(&db), check(&db));
        assert!(check(&db));
        db.insert(supt, t3("e0", "d9", "c0")); // violates eid -> dept
        assert_eq!(fd.satisfied(&db), check(&db));
        assert!(!check(&db));
    }

    #[test]
    fn cfd_compilation_handles_both_families() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let cfd = Cfd {
            rel: supt,
            lhs: vec![0],
            rhs: vec![2],
            lhs_pattern: vec![(1, Value::str("BU"))],
            rhs_pattern: vec![(2, Value::str("c-vip"))],
        };
        let ccs = cfd_to_ccs(&cfd, &s);
        assert_eq!(ccs.len(), 2);
        let dm = empty_master();
        let check = |db: &Database| ccs.iter().all(|cc| cc.satisfied(db, &dm).unwrap());

        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "SALES", "anything"));
        assert_eq!(cfd.satisfied(&db), check(&db));
        assert!(check(&db));
        // Single-tuple violation: BU tuple without the vip cid.
        db.insert(supt, t3("e1", "BU", "c-ordinary"));
        assert_eq!(cfd.satisfied(&db), check(&db));
        assert!(!check(&db));
    }

    #[test]
    fn cfd_pair_violation_detected_by_compiled_ccs() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let cfd = Cfd {
            rel: supt,
            lhs: vec![0],
            rhs: vec![2],
            lhs_pattern: vec![(1, Value::str("BU"))],
            rhs_pattern: vec![],
        };
        let ccs = cfd_to_ccs(&cfd, &s);
        let dm = empty_master();
        let check = |db: &Database| ccs.iter().all(|cc| cc.satisfied(db, &dm).unwrap());
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e1", "BU", "c2"));
        db.insert(supt, t3("e1", "BU", "c3"));
        assert_eq!(cfd.satisfied(&db), check(&db));
        assert!(!check(&db));
    }

    #[test]
    fn ind_compilation_agrees_with_direct_check() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("Emp", &["eid"])]).unwrap();
        let emp = m.rel_id("Emp").unwrap();
        let ind = IndCc::new(supt, vec![0], emp, vec![0]);
        let cc = ind_to_cc(&ind);
        let mut dm = Database::empty(&m);
        dm.insert(emp, Tuple::new([Value::str("e0")]));
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d", "c"));
        assert_eq!(ind.satisfied(&db, &dm), cc.satisfied(&db, &dm).unwrap());
        db.insert(supt, t3("eX", "d", "c"));
        assert_eq!(ind.satisfied(&db, &dm), cc.satisfied(&db, &dm).unwrap());
        assert!(!ind.satisfied(&db, &dm));
    }

    #[test]
    fn cind_compilation_agrees_with_direct_check() {
        let s = Schema::from_relations(vec![
            RelationSchema::infinite("Order", &["cid", "kind"]),
            RelationSchema::infinite("Cust", &["cid", "status"]),
        ])
        .unwrap();
        let (ord, cust) = (s.rel_id("Order").unwrap(), s.rel_id("Cust").unwrap());
        let cind = Cind {
            lhs_rel: ord,
            lhs_cols: vec![0],
            rhs_rel: cust,
            rhs_cols: vec![0],
            lhs_pattern: vec![(1, Value::str("priority"))],
            rhs_pattern: vec![(1, Value::str("gold"))],
        };
        let cc = cind_to_cc(&cind, &s);
        let dm = empty_master();
        let scenarios: Vec<Vec<(usize, Tuple)>> = vec![
            vec![(0, Tuple::new([Value::int(1), Value::str("normal")]))],
            vec![(0, Tuple::new([Value::int(2), Value::str("priority")]))],
            vec![
                (0, Tuple::new([Value::int(2), Value::str("priority")])),
                (1, Tuple::new([Value::int(2), Value::str("gold")])),
            ],
            vec![
                (0, Tuple::new([Value::int(3), Value::str("priority")])),
                (1, Tuple::new([Value::int(3), Value::str("silver")])),
            ],
        ];
        for sc in scenarios {
            let mut db = Database::empty(&s);
            for (rel, t) in sc {
                db.insert(ric_data::RelId(rel), t);
            }
            assert_eq!(
                cind.satisfied(&db),
                cc.satisfied(&db, &dm).unwrap(),
                "direct and compiled CIND checks disagree on {db}"
            );
        }
    }
}

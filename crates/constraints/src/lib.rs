//! # `ric-constraints` — containment constraints and data consistency
//!
//! A *containment constraint* (CC, Section 2.1) has the form
//! `q_v(R) ⊆ p(R_m)`: a query `q_v` in a language `L_C` over the database
//! schema, contained in a projection `p` of one master relation (or in `∅`).
//! A database `D` is **partially closed** with respect to `(D_m, V)` when
//! `(D, D_m) |= V`.
//!
//! Section 2.2 of the paper shows the same machinery captures *consistency*:
//! denial constraints and CFDs compile to CCs in CQ, CINDs to CCs in FO
//! (Proposition 2.1). The [`classical`] module provides those constraint
//! classes with direct checkers, and [`compile`] the equivalence-preserving
//! compilers — tested against each other property-style.

pub mod cc;
pub mod classical;
pub mod compile;
pub mod delta;

pub use cc::{CcBody, CcRhs, ConstraintSet, ContainmentConstraint, LowerBound, Projection};
pub use classical::{Cfd, Cind, Denial, Fd, IndCc};
pub use delta::{DeltaCheck, PreparedUpper};
// Re-exported so downstream crates (notably `ric-complete`) can accept
// arbitrary statistics providers without a direct `ric-plan` dependency.
pub use ric_plan::planner::StatsProvider;

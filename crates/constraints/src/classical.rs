//! Classical integrity constraints (Section 2.2) with direct checkers.
//!
//! * [`Denial`] — denial constraints (Arenas et al. 1999);
//! * [`Fd`] / [`Cfd`] — (conditional) functional dependencies (Fan et al.
//!   2008);
//! * [`IndCc`] — inclusion dependencies from the database into master data,
//!   the `L_C` = INDs cells of Tables I/II;
//! * [`Cind`] — conditional inclusion dependencies (Bravo et al. 2007).
//!
//! Each class has a semantics-level checker here and a compiler into
//! containment constraints in [`crate::compile`]; the test suites verify the
//! two agree on arbitrary databases (Proposition 2.1).

use ric_data::{Database, RelId, Value};
use ric_query::{Cq, Term};

/// A denial constraint `∀x̄ ¬(R_1(x̄_1) ∧ … ∧ R_k(x̄_k) ∧ φ)`, represented by
/// the forbidden pattern as a Boolean CQ: the constraint holds iff the query
/// is empty.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Denial {
    /// The forbidden pattern (head is ignored by the checker).
    pub pattern: Cq,
}

impl Denial {
    /// Build from a pattern CQ.
    pub fn new(pattern: Cq) -> Self {
        Denial { pattern }
    }

    /// Does `db` satisfy the constraint?
    pub fn satisfied(&self, db: &Database) -> bool {
        ric_query::eval::eval_cq(&self.pattern, db)
            .map(|res| res.is_empty())
            .unwrap_or(true)
    }
}

/// A functional dependency `X → Y` on one relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fd {
    /// The relation.
    pub rel: RelId,
    /// Determinant column positions `X`.
    pub lhs: Vec<usize>,
    /// Dependent column positions `Y`.
    pub rhs: Vec<usize>,
}

impl Fd {
    /// Build an FD.
    pub fn new(rel: RelId, lhs: Vec<usize>, rhs: Vec<usize>) -> Self {
        Fd { rel, lhs, rhs }
    }

    /// Does `db` satisfy the FD?
    pub fn satisfied(&self, db: &Database) -> bool {
        self.as_cfd().satisfied(db)
    }

    /// The equivalent pattern-free CFD.
    pub fn as_cfd(&self) -> Cfd {
        Cfd {
            rel: self.rel,
            lhs: self.lhs.clone(),
            rhs: self.rhs.clone(),
            lhs_pattern: Vec::new(),
            rhs_pattern: Vec::new(),
        }
    }
}

/// A conditional functional dependency: `X → Y` restricted to tuples matching
/// a constant pattern on `X`-side columns, additionally forcing a constant
/// pattern on `Y`-side columns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cfd {
    /// The relation.
    pub rel: RelId,
    /// Determinant columns `X`.
    pub lhs: Vec<usize>,
    /// Dependent columns `Y`.
    pub rhs: Vec<usize>,
    /// `φ(x̄)`: required constants on (any) columns for a tuple to be
    /// *selected* by the dependency.
    pub lhs_pattern: Vec<(usize, Value)>,
    /// `ψ(ȳ)`: constants that selected tuples must carry.
    pub rhs_pattern: Vec<(usize, Value)>,
}

impl Cfd {
    fn selects(&self, t: &ric_data::Tuple) -> bool {
        self.lhs_pattern.iter().all(|(c, v)| t.get(*c) == v)
    }

    /// Does `db` satisfy the CFD?
    pub fn satisfied(&self, db: &Database) -> bool {
        let inst = db.instance(self.rel);
        let selected: Vec<_> = inst.iter().filter(|t| self.selects(t)).collect();
        // Single-tuple condition: selected tuples carry the RHS pattern.
        for t in &selected {
            if !self.rhs_pattern.iter().all(|(c, v)| t.get(*c) == v) {
                return false;
            }
        }
        // Pair condition: agreeing on X forces agreeing on Y.
        for (i, t1) in selected.iter().enumerate() {
            for t2 in &selected[i + 1..] {
                let same_x = self.lhs.iter().all(|&c| t1.get(c) == t2.get(c));
                if same_x {
                    let same_y = self.rhs.iter().all(|&c| t1.get(c) == t2.get(c));
                    if !same_y {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// An inclusion dependency used as a containment constraint: a projection of
/// a database relation contained in a projection of a master relation (or
/// `∅`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndCc {
    /// Source relation (in the database schema).
    pub rel: RelId,
    /// Source columns.
    pub cols: Vec<usize>,
    /// Target master relation; `None` encodes containment in `∅` (which
    /// forces the source projection — hence the source relation — empty).
    pub master: Option<(RelId, Vec<usize>)>,
}

impl IndCc {
    /// `π_cols(R) ⊆ π_mcols(R^m)`.
    pub fn new(rel: RelId, cols: Vec<usize>, master_rel: RelId, master_cols: Vec<usize>) -> Self {
        IndCc {
            rel,
            cols,
            master: Some((master_rel, master_cols)),
        }
    }

    /// Does `(db, dm)` satisfy the IND?
    pub fn satisfied(&self, db: &Database, dm: &Database) -> bool {
        let lhs: std::collections::BTreeSet<_> = db
            .instance(self.rel)
            .iter()
            .map(|t| t.project(&self.cols))
            .collect();
        match &self.master {
            None => lhs.is_empty(),
            Some((mrel, mcols)) => {
                let rhs: std::collections::BTreeSet<_> = dm
                    .instance(*mrel)
                    .iter()
                    .map(|t| t.project(mcols))
                    .collect();
                lhs.is_subset(&rhs)
            }
        }
    }
}

/// A conditional inclusion dependency inside the database:
/// `∀ (R_1(x̄, ȳ_1, z̄_1) ∧ φ(ȳ_1) → ∃ (R_2(x̄, ȳ_2, z̄_2) ∧ ψ(ȳ_2)))`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cind {
    /// The constrained relation `R_1`.
    pub lhs_rel: RelId,
    /// Shared columns `x̄` in `R_1`.
    pub lhs_cols: Vec<usize>,
    /// The referenced relation `R_2`.
    pub rhs_rel: RelId,
    /// Shared columns `x̄` in `R_2` (same length/order as `lhs_cols`).
    pub rhs_cols: Vec<usize>,
    /// `φ(ȳ_1)`: selecting pattern on `R_1`.
    pub lhs_pattern: Vec<(usize, Value)>,
    /// `ψ(ȳ_2)`: required pattern on the witnessing `R_2` tuple.
    pub rhs_pattern: Vec<(usize, Value)>,
}

impl Cind {
    /// Does `db` satisfy the CIND?
    pub fn satisfied(&self, db: &Database) -> bool {
        let r2: Vec<_> = db
            .instance(self.rhs_rel)
            .iter()
            .filter(|t| self.rhs_pattern.iter().all(|(c, v)| t.get(*c) == v))
            .map(|t| t.project(&self.rhs_cols))
            .collect();
        for t1 in db.instance(self.lhs_rel).iter() {
            if !self.lhs_pattern.iter().all(|(c, v)| t1.get(*c) == v) {
                continue;
            }
            let key = t1.project(&self.lhs_cols);
            if !r2.contains(&key) {
                return false;
            }
        }
        true
    }
}

/// Helper: the Boolean "pattern" CQ for a denial constraint forbidding `k`
/// duplicate-free tuples in `rel` that agree nowhere — used by examples; the
/// paper's `φ_1` "each employee supports at most `k` customers" is the
/// special case produced by [`at_most_k_per_key`].
pub fn at_most_k_per_key(
    rel: RelId,
    key_col: usize,
    value_col: usize,
    k: usize,
    arity: usize,
) -> Denial {
    // q(e) :- R(..e..c1..), …, R(..e..c_{k+1}..), c_i ≠ c_j for i<j
    let mut b = Cq::builder();
    let key = b.var("key");
    let cs: Vec<_> = (0..=k).map(|i| b.var(&format!("c{i}"))).collect();
    let pads: Vec<Vec<_>> = (0..=k)
        .map(|i| {
            (0..arity)
                .filter(|&c| c != key_col && c != value_col)
                .map(|c| b.var(&format!("p{i}_{c}")))
                .collect()
        })
        .collect();
    let mut builder = b;
    for i in 0..=k {
        let mut args = Vec::with_capacity(arity);
        let mut pad_it = pads[i].iter();
        for c in 0..arity {
            if c == key_col {
                args.push(Term::Var(key));
            } else if c == value_col {
                args.push(Term::Var(cs[i]));
            } else {
                args.push(Term::Var(*pad_it.next().unwrap_or_else(|| {
                    unreachable!("pad vars sized to fill every column")
                })));
            }
        }
        builder = builder.atom(rel, args);
    }
    for i in 0..=k {
        for j in (i + 1)..=k {
            builder = builder.neq(Term::Var(cs[i]), Term::Var(cs[j]));
        }
    }
    Denial::new(builder.head_vars(vec![key]).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Schema, Tuple};

    fn supt_schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap()
    }

    fn t3(a: &str, b: &str, c: &str) -> Tuple {
        Tuple::new([Value::str(a), Value::str(b), Value::str(c)])
    }

    #[test]
    fn fd_detects_violation() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1, 2]); // eid -> dept, cid
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d0", "c0"));
        assert!(fd.satisfied(&db));
        db.insert(supt, t3("e1", "d1", "c1"));
        assert!(fd.satisfied(&db));
        db.insert(supt, t3("e0", "d0", "c9"));
        assert!(!fd.satisfied(&db));
    }

    #[test]
    fn cfd_only_constrains_selected_tuples() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        // dept = "BU": eid -> cid (the paper's Section 2.2 example).
        let cfd = Cfd {
            rel: supt,
            lhs: vec![0],
            rhs: vec![2],
            lhs_pattern: vec![(1, Value::str("BU"))],
            rhs_pattern: vec![],
        };
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "SALES", "c0"));
        db.insert(supt, t3("e0", "SALES", "c1")); // same eid, two cids, not BU
        assert!(cfd.satisfied(&db));
        db.insert(supt, t3("e1", "BU", "c2"));
        assert!(cfd.satisfied(&db));
        db.insert(supt, t3("e1", "BU", "c3"));
        assert!(!cfd.satisfied(&db));
    }

    #[test]
    fn cfd_rhs_pattern_single_tuple() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        // dept = "BU" -> cid = "c-vip"
        let cfd = Cfd {
            rel: supt,
            lhs: vec![0],
            rhs: vec![2],
            lhs_pattern: vec![(1, Value::str("BU"))],
            rhs_pattern: vec![(2, Value::str("c-vip"))],
        };
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "BU", "c-vip"));
        assert!(cfd.satisfied(&db));
        db.insert(supt, t3("e1", "BU", "c-ordinary"));
        assert!(!cfd.satisfied(&db));
    }

    #[test]
    fn denial_at_most_k() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let denial = at_most_k_per_key(supt, 0, 2, 2, 3); // ≤ 2 customers per eid
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d", "c0"));
        db.insert(supt, t3("e0", "d", "c1"));
        assert!(denial.satisfied(&db));
        db.insert(supt, t3("e0", "d", "c2"));
        assert!(!denial.satisfied(&db));
    }

    #[test]
    fn ind_cc_against_master() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("Emp", &["eid"])]).unwrap();
        let emp = m.rel_id("Emp").unwrap();
        let ind = IndCc::new(supt, vec![0], emp, vec![0]);
        let mut dm = Database::empty(&m);
        dm.insert(emp, Tuple::new([Value::str("e0")]));
        let mut db = Database::empty(&s);
        db.insert(supt, t3("e0", "d", "c0"));
        assert!(ind.satisfied(&db, &dm));
        db.insert(supt, t3("eX", "d", "c1"));
        assert!(!ind.satisfied(&db, &dm));
    }

    #[test]
    fn ind_cc_into_empty() {
        let s = supt_schema();
        let supt = s.rel_id("Supt").unwrap();
        let ind = IndCc {
            rel: supt,
            cols: vec![0],
            master: None,
        };
        let db = Database::empty(&s);
        let dm = Database::with_relations(0);
        assert!(ind.satisfied(&db, &dm));
        let mut db2 = db.clone();
        db2.insert(supt, t3("e0", "d", "c"));
        assert!(!ind.satisfied(&db2, &dm));
    }

    #[test]
    fn cind_requires_witness_with_pattern() {
        let s = Schema::from_relations(vec![
            RelationSchema::infinite("Order", &["cid", "kind"]),
            RelationSchema::infinite("Cust", &["cid", "status"]),
        ])
        .unwrap();
        let (ord, cust) = (s.rel_id("Order").unwrap(), s.rel_id("Cust").unwrap());
        // Order(cid, kind='priority') → ∃ Cust(cid, status='gold')
        let cind = Cind {
            lhs_rel: ord,
            lhs_cols: vec![0],
            rhs_rel: cust,
            rhs_cols: vec![0],
            lhs_pattern: vec![(1, Value::str("priority"))],
            rhs_pattern: vec![(1, Value::str("gold"))],
        };
        let mut db = Database::empty(&s);
        db.insert(ord, Tuple::new([Value::int(1), Value::str("normal")]));
        assert!(cind.satisfied(&db));
        db.insert(ord, Tuple::new([Value::int(2), Value::str("priority")]));
        assert!(!cind.satisfied(&db));
        db.insert(cust, Tuple::new([Value::int(2), Value::str("gold")]));
        assert!(cind.satisfied(&db));
        db.insert(ord, Tuple::new([Value::int(3), Value::str("priority")]));
        db.insert(cust, Tuple::new([Value::int(3), Value::str("silver")]));
        assert!(!cind.satisfied(&db));
    }
}

//! Incremental (delta-aware) satisfaction of upper-bound constraints.
//!
//! The deciders' hot loop asks, for a candidate extension `D ∪ Δ` of a base
//! `D` already known to satisfy the upper bounds, whether the bounds still
//! hold. Because every CC body in `L_C ⊆ ∃FO⁺` is monotone,
//!
//! ```text
//! q(D ∪ Δ) = q(D) ∪ { answers whose derivation uses a novel Δ-tuple }
//! ```
//!
//! so with `q(D) ⊆ rhs` given, the union satisfies the constraint iff the
//! *delta answers* do — computed by
//! [`eval_tableau_delta`] without ever
//! materializing the union. Constraints whose body reads no relation with a
//! novel delta tuple are skipped outright (reported as
//! [`DeltaCheck::skipped`], the deciders' `cc.skipped_by_delta` counter).
//!
//! FO and FP bodies are not monotone (negation); for those the overlay is
//! materialized once and the body re-evaluated in full — correct, just not
//! incremental.

use crate::cc::{CcBody, ConstraintSet};
use ric_data::{Database, Overlay, RelId, Tuple};
use ric_plan::planner::{plan_tableau_delta, StatsProvider};
use ric_plan::{exec, DeltaPlans};
use ric_query::eval::eval_tableau_delta;
use ric_query::tableau::{Tableau, TableauError};
use std::collections::BTreeSet;

/// Outcome of one incremental upper-bound check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeltaCheck {
    /// Do the upper bounds hold on `base ∪ delta` (given they hold on the
    /// base)?
    pub satisfied: bool,
    /// Constraints actually (re-)evaluated.
    pub checked: usize,
    /// Constraints skipped because the delta touches none of their body
    /// relations.
    pub skipped: usize,
    /// Index (into the original [`ConstraintSet::ccs`]) of the violated
    /// constraint when `satisfied` is `false`; always `None` otherwise.
    /// Evaluation short-circuits on the first violation, so this matches
    /// [`ConstraintSet::first_violated_upper`] over the materialized union —
    /// the deciders' pruning-attribution counters key on it.
    pub violated: Option<usize>,
}

/// One upper-bound constraint, prepared for repeated incremental checks.
struct PreparedCc {
    /// Relations the body reads.
    rels: BTreeSet<RelId>,
    /// The body's tableaux (`None` for FO/FP bodies, which re-evaluate in
    /// full on the materialized union).
    tableaux: Option<Vec<Tableau>>,
    /// Compiled delta plans, one per tableau, when this set was prepared
    /// with [`PreparedUpper::with_plans`]. Plans and tableaux answer the
    /// same question; the plans just fix the join order up front.
    plans: Option<Vec<DeltaPlans>>,
    /// The right-hand side evaluated on the master data, fixed per decision.
    rhs: BTreeSet<Tuple>,
}

/// A constraint set compiled against fixed master data, ready to answer
/// "does `base ∪ delta` still satisfy the upper bounds?" many times.
///
/// Preparation happens once per decision — tableau normalization and the
/// right-hand-side projections move out of the per-candidate loop.
pub struct PreparedUpper {
    ccs: Vec<PreparedCc>,
    /// Body of some constraint is FO/FP (forces materialization when its
    /// relations are touched).
    fo_bodies: Vec<usize>,
    /// Per-relation row counts the planner costed against, for every
    /// relation read by a plan-bearing body. Empty when prepared without
    /// plans. Telemetry compares these against the decision database so a
    /// trace can show how stale the planning statistics were.
    planned_rows: Vec<(RelId, usize)>,
}

impl PreparedUpper {
    /// Prepare the upper bounds of `v` against master data `dm`.
    pub fn new(
        v: &ConstraintSet,
        schema: &ric_data::Schema,
        dm: &Database,
    ) -> Result<Self, TableauError> {
        Self::build(v, schema, dm, None)
    }

    /// Prepare the upper bounds of `v` against master data `dm` *and*
    /// compile every monotone body's tableaux into cost-based
    /// [`DeltaPlans`] steered by `stats` (normally the base database).
    ///
    /// Plan choice affects join order only, never answers:
    /// [`Self::satisfied_delta`] on a plan-bearing preparation returns the
    /// same [`DeltaCheck`] — including the violated-constraint index — as on
    /// a plain one.
    pub fn with_plans(
        v: &ConstraintSet,
        schema: &ric_data::Schema,
        dm: &Database,
        stats: &dyn StatsProvider,
    ) -> Result<Self, TableauError> {
        Self::build(v, schema, dm, Some(stats))
    }

    fn build(
        v: &ConstraintSet,
        schema: &ric_data::Schema,
        dm: &Database,
        stats: Option<&dyn StatsProvider>,
    ) -> Result<Self, TableauError> {
        let mut ccs = Vec::with_capacity(v.ccs.len());
        let mut fo_bodies = Vec::new();
        for (i, cc) in v.ccs.iter().enumerate() {
            let tableaux = match cc.body.as_ucq(schema) {
                Some(ucq) => Some(ucq.tableaux()?),
                None => {
                    fo_bodies.push(i);
                    None
                }
            };
            let plans = match (&tableaux, stats) {
                (Some(ts), Some(stats)) => {
                    Some(ts.iter().map(|t| plan_tableau_delta(t, stats)).collect())
                }
                _ => None,
            };
            ccs.push(PreparedCc {
                rels: cc.body.rels(),
                tableaux,
                plans,
                rhs: cc.rhs.eval(dm),
            });
        }
        let planned_rows = match stats {
            Some(stats) => {
                let rels: BTreeSet<RelId> = ccs
                    .iter()
                    .filter(|cc| cc.plans.is_some())
                    .flat_map(|cc| cc.rels.iter().copied())
                    .collect();
                rels.into_iter()
                    .map(|r| (r, stats.rel_stats(r).rows))
                    .collect()
            }
            None => Vec::new(),
        };
        Ok(PreparedUpper {
            ccs,
            fo_bodies,
            planned_rows,
        })
    }

    /// The row counts the planner costed against, per relation read by a
    /// plan-bearing body (sorted by relation id). Empty when prepared
    /// without plans.
    pub fn planned_rows(&self) -> &[(RelId, usize)] {
        &self.planned_rows
    }

    /// Summary of the compiled plans for telemetry: `(constraints with
    /// plans, plans that fell back to the static order, total estimated
    /// cost)`. All zeros when prepared without plans.
    pub fn plan_summary(&self) -> (usize, usize, f64) {
        let mut compiled = 0usize;
        let mut fallbacks = 0usize;
        let mut cost = 0.0f64;
        for prep in &self.ccs {
            if let Some(plans) = &prep.plans {
                compiled += 1;
                for dp in plans {
                    if dp.fallback() {
                        fallbacks += 1;
                    }
                    cost += dp.cost();
                }
            }
        }
        (compiled, fallbacks, cost)
    }

    /// Render every compiled plan (one constraint per paragraph) for the
    /// Explain trace note. Empty when prepared without plans.
    pub fn render_plans(&self, rel_name: impl Fn(RelId) -> String + Copy) -> String {
        let mut out = String::new();
        for (i, prep) in self.ccs.iter().enumerate() {
            if let Some(plans) = &prep.plans {
                for (j, dp) in plans.iter().enumerate() {
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    out.push_str(&format!("cc{i}.t{j}: "));
                    out.push_str(
                        &dp.render(rel_name)
                            .replace('\n', &format!("\ncc{i}.t{j}: ")),
                    );
                }
            }
        }
        out
    }

    /// Any FO/FP bodies among the prepared constraints?
    pub fn has_nonmonotone_bodies(&self) -> bool {
        !self.fo_bodies.is_empty()
    }

    /// Given that the upper bounds hold on `ov.base()`, do they hold on the
    /// union `ov.base() ∪ ov.delta()`?
    ///
    /// The caller owns the precondition; this method only examines what the
    /// novel delta tuples add. `original` must be the constraint set this
    /// was prepared from (needed to re-evaluate FO/FP bodies).
    pub fn satisfied_delta(
        &self,
        original: &ConstraintSet,
        ov: &Overlay<'_>,
    ) -> Result<DeltaCheck, TableauError> {
        let novel: BTreeSet<RelId> = ov.novel_rels().collect();
        let mut checked = 0usize;
        let mut skipped = 0usize;
        // Lazily materialized union, shared by every FO/FP body.
        let mut materialized: Option<Database> = None;
        for (i, (prep, cc)) in self.ccs.iter().zip(original.ccs.iter()).enumerate() {
            if prep.rels.is_disjoint(&novel) {
                skipped += 1;
                continue;
            }
            checked += 1;
            match &prep.tableaux {
                Some(ts) => {
                    let within = match &prep.plans {
                        // Compiled path: early-exits on the first delta
                        // answer outside the bound, no answer-set built.
                        Some(plans) => exec::with_scratch(|scratch| {
                            plans
                                .iter()
                                .all(|dp| dp.delta_answers_within(ov, scratch, &prep.rhs))
                        }),
                        None => ts.iter().all(|t| {
                            eval_tableau_delta(t, ov)
                                .iter()
                                .all(|a| prep.rhs.contains(a))
                        }),
                    };
                    if !within {
                        return Ok(DeltaCheck {
                            satisfied: false,
                            checked,
                            skipped,
                            violated: Some(i),
                        });
                    }
                }
                None => {
                    let union = materialized.get_or_insert_with(|| ov.materialize());
                    let lhs = match &cc.body {
                        CcBody::Fo(q) => q.try_eval(union)?,
                        CcBody::Fp(p) => p.eval(union),
                        // as_ucq only fails on FO/FP bodies.
                        _ => unreachable!("monotone bodies are prepared as tableaux"),
                    };
                    if !lhs.iter().all(|a| prep.rhs.contains(a)) {
                        return Ok(DeltaCheck {
                            satisfied: false,
                            checked,
                            skipped,
                            violated: Some(i),
                        });
                    }
                }
            }
        }
        Ok(DeltaCheck {
            satisfied: true,
            checked,
            skipped,
            violated: None,
        })
    }
}

impl ConstraintSet {
    /// One-shot incremental upper-bound check: prepare against `dm`, then
    /// verify what `ov`'s delta adds. For repeated checks against the same
    /// `(V, dm)` (the deciders' loops), build a [`PreparedUpper`] once
    /// instead.
    pub fn upper_satisfied_delta(
        &self,
        schema: &ric_data::Schema,
        dm: &Database,
        ov: &Overlay<'_>,
    ) -> Result<DeltaCheck, TableauError> {
        PreparedUpper::new(self, schema, dm)?.satisfied_delta(self, ov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{ContainmentConstraint, Projection};
    use ric_data::{RelationSchema, Schema, Value};
    use ric_query::parse_cq;

    fn schemas() -> (Schema, Schema) {
        let r = Schema::from_relations(vec![
            RelationSchema::infinite("Cust", &["cid", "cc"]),
            RelationSchema::infinite("Ord", &["oid"]),
        ])
        .unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        (r, m)
    }

    fn t1(v: i64) -> Tuple {
        Tuple::new([Value::int(v)])
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::new([Value::int(a), Value::int(b)])
    }

    #[test]
    fn delta_check_agrees_with_full_check() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 1.").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(q),
            dcust,
            vec![0],
        )]);
        let mut dm = Database::empty(&m);
        dm.insert(dcust, t1(10));
        dm.insert(dcust, t1(11));
        let mut db = Database::empty(&r);
        db.insert(cust, t2(10, 1));
        assert!(v.upper_satisfied(&db, &dm).unwrap());

        // A delta that stays within the master bound.
        let mut ok_delta = Database::empty(&r);
        ok_delta.insert(cust, t2(11, 1));
        let ov = Overlay::new(&db, &ok_delta).unwrap();
        let res = v.upper_satisfied_delta(&r, &dm, &ov).unwrap();
        assert!(res.satisfied);
        assert_eq!(res.checked, 1);
        assert!(v.upper_satisfied(&ov.materialize(), &dm).unwrap());

        // A delta that violates it.
        let mut bad_delta = Database::empty(&r);
        bad_delta.insert(cust, t2(99, 1));
        let ov = Overlay::new(&db, &bad_delta).unwrap();
        assert!(!v.upper_satisfied_delta(&r, &dm, &ov).unwrap().satisfied);
        assert!(!v.upper_satisfied(&ov.materialize(), &dm).unwrap());
    }

    #[test]
    fn untouched_constraints_are_skipped() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let ord = r.rel_id("Ord").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(cust, vec![0])),
            dcust,
            vec![0],
        )]);
        let dm = Database::empty(&m);
        let db = Database::empty(&r);
        // Delta touches only Ord; the Cust constraint must be skipped.
        let mut delta = Database::empty(&r);
        delta.insert(ord, t1(5));
        let ov = Overlay::new(&db, &delta).unwrap();
        let res = v.upper_satisfied_delta(&r, &dm, &ov).unwrap();
        assert!(res.satisfied);
        assert_eq!(res.checked, 0);
        assert_eq!(res.skipped, 1);
    }

    #[test]
    fn non_novel_delta_tuples_trigger_nothing() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(cust, vec![0])),
            dcust,
            vec![0],
        )]);
        // Base violates nothing vacuously (bound 10 present in master).
        let mut dm = Database::empty(&m);
        dm.insert(dcust, t1(10));
        let mut db = Database::empty(&r);
        db.insert(cust, t2(10, 1));
        // Delta repeats a base tuple: nothing novel, constraint skipped.
        let mut delta = Database::empty(&r);
        delta.insert(cust, t2(10, 1));
        let ov = Overlay::new(&db, &delta).unwrap();
        let res = v.upper_satisfied_delta(&r, &dm, &ov).unwrap();
        assert!(res.satisfied);
        assert_eq!(res.checked, 0);
        assert_eq!(res.skipped, 1);
    }

    #[test]
    fn planned_preparation_returns_identical_delta_checks() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 1.").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(q),
            dcust,
            vec![0],
        )]);
        let mut dm = Database::empty(&m);
        dm.insert(dcust, t1(10));
        dm.insert(dcust, t1(11));
        let mut db = Database::empty(&r);
        db.insert(cust, t2(10, 1));
        let plain = PreparedUpper::new(&v, &r, &dm).unwrap();
        let planned = PreparedUpper::with_plans(&v, &r, &dm, &db).unwrap();
        assert_eq!(plain.plan_summary(), (0, 0, 0.0));
        let (compiled, _, _) = planned.plan_summary();
        assert_eq!(compiled, 1);
        assert!(planned.render_plans(|_| "Cust".into()).contains("est="));
        for (cid, cc) in [(11, 1), (99, 1), (99, 2)] {
            let mut delta = Database::empty(&r);
            delta.insert(cust, t2(cid, cc));
            let ov = Overlay::new(&db, &delta).unwrap();
            let a = plain.satisfied_delta(&v, &ov).unwrap();
            let b = planned.satisfied_delta(&v, &ov).unwrap();
            assert_eq!(a, b, "delta ({cid}, {cc})");
        }
    }

    #[test]
    fn fo_bodies_fall_back_to_materialization() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        use ric_query::{FoExpr, FoQuery, Term, Var};
        // Q(x) := ∃c Cust(x, c) ∧ ¬Cust(x, x) — not monotone.
        let (x, c) = (Var(0), Var(1));
        let q = FoQuery::new(
            vec![x],
            FoExpr::And(vec![
                FoExpr::Exists(
                    vec![c],
                    Box::new(FoExpr::Atom(ric_query::Atom::new(
                        cust,
                        vec![Term::Var(x), Term::Var(c)],
                    ))),
                ),
                FoExpr::not(FoExpr::Atom(ric_query::Atom::new(
                    cust,
                    vec![Term::Var(x), Term::Var(x)],
                ))),
            ]),
            vec!["x".into(), "c".into()],
        );
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_empty(CcBody::Fo(q))]);
        let dm = Database::empty(&m);
        let mut db = Database::empty(&r);
        db.insert(cust, t2(7, 7)); // Q(D) = ∅: satisfied
        assert!(v.upper_satisfied(&db, &dm).unwrap());
        let mut delta = Database::empty(&r);
        delta.insert(cust, t2(8, 9)); // Q now returns {8}: ⊆ ∅ fails
        let ov = Overlay::new(&db, &delta).unwrap();
        let res = v.upper_satisfied_delta(&r, &dm, &ov).unwrap();
        assert!(!res.satisfied);
        assert_eq!(res.checked, 1);
    }
}

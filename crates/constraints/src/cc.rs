//! Containment constraints `q_v(R) ⊆ p(R_m)` and their satisfaction.

use ric_data::{Database, Instance, RelId, Tuple, Value};
use ric_query::tableau::TableauError;
use ric_query::{Cq, EfoQuery, FoQuery, Program, QueryLanguage, Ucq};
use std::collections::BTreeSet;

/// A projection query `π_cols(R_i)` — the only query form allowed on the
/// right-hand side, and the left-hand side form when `L_C` is the class of
/// inclusion dependencies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Projection {
    /// The projected relation.
    pub rel: RelId,
    /// The projected column positions, in output order.
    pub cols: Vec<usize>,
}

impl Projection {
    /// Build a projection.
    pub fn new(rel: RelId, cols: Vec<usize>) -> Self {
        Projection { rel, cols }
    }

    /// Evaluate on an instance set.
    pub fn eval(&self, db: &Database) -> BTreeSet<Tuple> {
        self.eval_instance(db.instance(self.rel))
    }

    fn eval_instance(&self, inst: &Instance) -> BTreeSet<Tuple> {
        inst.iter().map(|t| t.project(&self.cols)).collect()
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }
}

/// The left-hand side `q_v` of a containment constraint, in one of the
/// languages `L_C` of the paper.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CcBody {
    /// A projection on the database — `L_C` = INDs.
    Proj(Projection),
    /// A conjunctive query.
    Cq(Cq),
    /// A union of conjunctive queries.
    Ucq(Ucq),
    /// A positive existential FO query.
    Efo(EfoQuery),
    /// A first-order query (undecidable cells of Tables I/II).
    Fo(FoQuery),
    /// A datalog query (undecidable cells of Tables I/II).
    Fp(Program),
}

impl CcBody {
    /// The language this body belongs to (smallest class in the paper's
    /// hierarchy that syntactically contains it).
    pub fn language(&self) -> QueryLanguage {
        match self {
            CcBody::Proj(_) => QueryLanguage::Inds,
            CcBody::Cq(_) => QueryLanguage::Cq,
            CcBody::Ucq(_) => QueryLanguage::Ucq,
            CcBody::Efo(_) => QueryLanguage::EfoPlus,
            CcBody::Fo(_) => QueryLanguage::Fo,
            CcBody::Fp(_) => QueryLanguage::Fp,
        }
    }

    /// Evaluate on the database.
    pub fn eval(&self, db: &Database) -> Result<BTreeSet<Tuple>, TableauError> {
        match self {
            CcBody::Proj(p) => Ok(p.eval(db)),
            CcBody::Cq(q) => ric_query::eval::eval_cq(q, db),
            CcBody::Ucq(q) => ric_query::eval::eval_ucq(q, db),
            CcBody::Efo(q) => q.eval(db),
            CcBody::Fo(q) => Ok(q.eval(db)),
            CcBody::Fp(p) => Ok(p.eval(db)),
        }
    }

    /// Constants appearing in the body (contributes to `Adom`).
    pub fn constants(&self) -> BTreeSet<Value> {
        match self {
            CcBody::Proj(_) => BTreeSet::new(),
            CcBody::Cq(q) => q.constants(),
            CcBody::Ucq(q) => q.constants(),
            CcBody::Efo(q) => q.constants(),
            CcBody::Fo(q) => {
                let mut out = BTreeSet::new();
                q.body.constants(&mut out);
                out
            }
            CcBody::Fp(p) => {
                let mut out = BTreeSet::new();
                for rule in &p.rules {
                    let mut push = |t: &ric_query::Term| {
                        if let ric_query::Term::Const(c) = t {
                            out.insert(c.clone());
                        }
                    };
                    for t in &rule.head_args {
                        push(t);
                    }
                    for lit in &rule.body {
                        match lit {
                            ric_query::Literal::Edb(a) => a.args.iter().for_each(&mut push),
                            ric_query::Literal::Idb(_, args) => args.iter().for_each(&mut push),
                            ric_query::Literal::Eq(l, r) | ric_query::Literal::Neq(l, r) => {
                                push(l);
                                push(r);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// The CQ disjuncts of this body, if it is (equivalent to) a UCQ — used
    /// by the characterizations, which work tableau by tableau. `None` for
    /// FO/FP bodies. Projections need the database schema to recover their
    /// relation's arity.
    pub fn as_ucq(&self, schema: &ric_data::Schema) -> Option<Ucq> {
        match self {
            CcBody::Proj(p) => {
                let arity = schema.arity(p.rel).ok()?;
                let mut b = Cq::builder();
                let vars: Vec<_> = (0..arity).map(|i| b.var(&format!("c{i}"))).collect();
                let head = p
                    .cols
                    .iter()
                    .map(|&c| ric_query::Term::Var(vars[c]))
                    .collect();
                let q = b
                    .atom(
                        p.rel,
                        vars.iter().map(|&v| ric_query::Term::Var(v)).collect(),
                    )
                    .head(head)
                    .build();
                Some(Ucq::single(q))
            }
            CcBody::Cq(q) => Some(Ucq::single(q.clone())),
            CcBody::Ucq(q) => Some(q.clone()),
            CcBody::Efo(q) => Some(q.to_ucq()),
            CcBody::Fo(_) | CcBody::Fp(_) => None,
        }
    }

    /// The database relations this body reads. Incremental checking skips a
    /// constraint when a delta touches none of them.
    pub fn rels(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        match self {
            CcBody::Proj(p) => {
                out.insert(p.rel);
            }
            CcBody::Cq(q) => out.extend(q.atoms.iter().map(|a| a.rel)),
            CcBody::Ucq(u) => {
                out.extend(
                    u.disjuncts
                        .iter()
                        .flat_map(|d| d.atoms.iter())
                        .map(|a| a.rel),
                );
            }
            CcBody::Efo(q) => {
                fn scan(e: &ric_query::EfoExpr, out: &mut BTreeSet<RelId>) {
                    match e {
                        ric_query::EfoExpr::Atom(a) => {
                            out.insert(a.rel);
                        }
                        ric_query::EfoExpr::Eq(..) | ric_query::EfoExpr::Neq(..) => {}
                        ric_query::EfoExpr::And(ps) | ric_query::EfoExpr::Or(ps) => {
                            ps.iter().for_each(|p| scan(p, out));
                        }
                    }
                }
                scan(&q.body, &mut out);
            }
            CcBody::Fo(q) => {
                fn scan(e: &ric_query::FoExpr, out: &mut BTreeSet<RelId>) {
                    match e {
                        ric_query::FoExpr::Atom(a) => {
                            out.insert(a.rel);
                        }
                        ric_query::FoExpr::Eq(..) => {}
                        ric_query::FoExpr::Not(x) => scan(x, out),
                        ric_query::FoExpr::And(ps) | ric_query::FoExpr::Or(ps) => {
                            ps.iter().for_each(|p| scan(p, out));
                        }
                        ric_query::FoExpr::Exists(_, x) | ric_query::FoExpr::Forall(_, x) => {
                            scan(x, out);
                        }
                    }
                }
                scan(&q.body, &mut out);
            }
            CcBody::Fp(p) => {
                for rule in &p.rules {
                    for lit in &rule.body {
                        if let ric_query::Literal::Edb(a) = lit {
                            out.insert(a.rel);
                        }
                    }
                }
            }
        }
        out
    }
}

/// The right-hand side `p` of a containment constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CcRhs {
    /// `q_v ⊆ ∅` — containment in an empty master relation.
    Empty,
    /// `q_v ⊆ π_cols(R^m_i)` — a projection of a master relation.
    Master(Projection),
}

impl CcRhs {
    /// Evaluate against the master data.
    pub fn eval(&self, dm: &Database) -> BTreeSet<Tuple> {
        match self {
            CcRhs::Empty => BTreeSet::new(),
            CcRhs::Master(p) => p.eval(dm),
        }
    }
}

/// A containment constraint `q_v(R) ⊆ p(R_m)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContainmentConstraint {
    /// The query on the database.
    pub body: CcBody,
    /// The projection on the master data (or `∅`).
    pub rhs: CcRhs,
}

impl ContainmentConstraint {
    /// `q_v ⊆ ∅`.
    pub fn into_empty(body: CcBody) -> Self {
        ContainmentConstraint {
            body,
            rhs: CcRhs::Empty,
        }
    }

    /// `q_v ⊆ π_cols(R^m)`.
    pub fn into_master(body: CcBody, rel: RelId, cols: Vec<usize>) -> Self {
        ContainmentConstraint {
            body,
            rhs: CcRhs::Master(Projection::new(rel, cols)),
        }
    }

    /// `(D, D_m) |= φ_v`.
    pub fn satisfied(&self, db: &Database, dm: &Database) -> Result<bool, TableauError> {
        let lhs = self.body.eval(db)?;
        if lhs.is_empty() {
            return Ok(true);
        }
        let rhs = self.rhs.eval(dm);
        Ok(lhs.is_subset(&rhs))
    }
}

/// A *lower-bound* containment constraint `p(R_m) ⊆ q(R)`: the database must
/// contain at least the master information extracted by `p`.
///
/// Section 5 of the paper defers this "richer class" (constraints from the
/// master data into the database) to future work; Example 1.1 already needs
/// it (`Manage ⊇ Manage_m`). The key property that keeps the RCDP machinery
/// unchanged: with a monotone body `q`, a satisfied lower bound stays
/// satisfied in every extension `D′ ⊇ D`, so lower bounds gate the *input*
/// (partial closure) but can never be violated by adding tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LowerBound {
    /// The projection on the master data.
    pub master: Projection,
    /// The query on the database that must cover it.
    pub body: CcBody,
}

impl LowerBound {
    /// `(D, D_m) |= p(R_m) ⊆ q(R)`.
    pub fn satisfied(&self, db: &Database, dm: &Database) -> Result<bool, TableauError> {
        let lhs = self.master.eval(dm);
        if lhs.is_empty() {
            return Ok(true);
        }
        Ok(lhs.is_subset(&self.body.eval(db)?))
    }
}

/// A set `V` of containment constraints.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConstraintSet {
    /// The upper-bound constraints `q(R) ⊆ p(R_m)` of the paper.
    pub ccs: Vec<ContainmentConstraint>,
    /// Lower-bound constraints `p(R_m) ⊆ q(R)` (the Section 5 extension).
    pub lower_bounds: Vec<LowerBound>,
}

impl ConstraintSet {
    /// The empty constraint set (pure open-world database).
    pub fn empty() -> Self {
        ConstraintSet::default()
    }

    /// Build from constraints.
    pub fn new(ccs: Vec<ContainmentConstraint>) -> Self {
        ConstraintSet {
            ccs,
            lower_bounds: Vec::new(),
        }
    }

    /// Add a constraint.
    pub fn push(&mut self, cc: ContainmentConstraint) {
        self.ccs.push(cc);
    }

    /// Add a lower-bound constraint (the Section 5 extension).
    pub fn push_lower_bound(&mut self, lb: LowerBound) {
        self.lower_bounds.push(lb);
    }

    /// `(D, D_m) |= V`, including lower bounds.
    pub fn satisfied(&self, db: &Database, dm: &Database) -> Result<bool, TableauError> {
        if !self.upper_satisfied(db, dm)? {
            return Ok(false);
        }
        for lb in &self.lower_bounds {
            if !lb.satisfied(db, dm)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Only the upper-bound constraints — what the deciders re-check on
    /// candidate extensions (lower bounds are preserved under extension by
    /// monotonicity and are validated once, on the input).
    pub fn upper_satisfied(&self, db: &Database, dm: &Database) -> Result<bool, TableauError> {
        Ok(self.first_violated_upper(db, dm)?.is_none())
    }

    /// Like [`Self::upper_satisfied`], reporting *which* constraint failed:
    /// the index (into [`Self::ccs`]) of the first violated upper bound, or
    /// `None` when all hold. Same evaluation order and short-circuit as the
    /// boolean check, so instrumented and uninstrumented runs do identical
    /// work — the deciders' pruning-attribution counters key on this index.
    pub fn first_violated_upper(
        &self,
        db: &Database,
        dm: &Database,
    ) -> Result<Option<usize>, TableauError> {
        for (i, cc) in self.ccs.iter().enumerate() {
            if !cc.satisfied(db, dm)? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// The most expressive language used by any constraint body, which
    /// determines the `L_C` column of Tables I/II (CQ for the empty set).
    pub fn language(&self) -> QueryLanguage {
        self.ccs
            .iter()
            .map(|cc| cc.body.language())
            .chain(self.lower_bounds.iter().map(|lb| lb.body.language()))
            .max()
            .unwrap_or(QueryLanguage::Inds)
    }

    /// Are all constraints inclusion dependencies? (Enables the C3/E3-E4
    /// fast paths of Corollary 3.4 and Proposition 4.3.)
    pub fn is_ind_set(&self) -> bool {
        self.ccs.iter().all(|cc| matches!(cc.body, CcBody::Proj(_)))
    }

    /// All constants appearing in constraint bodies.
    pub fn constants(&self) -> BTreeSet<Value> {
        self.ccs.iter().flat_map(|cc| cc.body.constants()).collect()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.ccs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ccs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Schema};
    use ric_query::parse_cq;

    /// Database schema: Cust(cid, cc); master schema: DCust(cid).
    fn schemas() -> (Schema, Schema) {
        let r =
            Schema::from_relations(vec![RelationSchema::infinite("Cust", &["cid", "cc"])]).unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        (r, m)
    }

    #[test]
    fn ind_cc_bounds_projection() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let cc = ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(cust, vec![0])),
            dcust,
            vec![0],
        );
        let mut dm = Database::empty(&m);
        dm.insert(dcust, Tuple::new([Value::int(1)]));
        dm.insert(dcust, Tuple::new([Value::int(2)]));
        let mut db = Database::empty(&r);
        db.insert(cust, Tuple::new([Value::int(1), Value::int(1)]));
        assert!(cc.satisfied(&db, &dm).unwrap());
        db.insert(cust, Tuple::new([Value::int(3), Value::int(1)]));
        assert!(!cc.satisfied(&db, &dm).unwrap());
    }

    #[test]
    fn cq_cc_with_selection() {
        let (r, m) = schemas();
        let dcust = m.rel_id("DCust").unwrap();
        // Domestic customers (cc = 1) bounded by DCust.
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 1.").unwrap();
        let cc = ContainmentConstraint::into_master(CcBody::Cq(q), dcust, vec![0]);
        let mut dm = Database::empty(&m);
        dm.insert(dcust, Tuple::new([Value::int(10)]));
        let cust = r.rel_id("Cust").unwrap();
        let mut db = Database::empty(&r);
        db.insert(cust, Tuple::new([Value::int(10), Value::int(1)])); // domestic, known
        db.insert(cust, Tuple::new([Value::int(99), Value::int(2)])); // international, free
        assert!(cc.satisfied(&db, &dm).unwrap());
        db.insert(cust, Tuple::new([Value::int(11), Value::int(1)])); // domestic, unknown
        assert!(!cc.satisfied(&db, &dm).unwrap());
    }

    #[test]
    fn empty_rhs_is_denial() {
        let (r, m) = schemas();
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 7.").unwrap();
        let cc = ContainmentConstraint::into_empty(CcBody::Cq(q));
        let dm = Database::empty(&m);
        let cust = r.rel_id("Cust").unwrap();
        let mut db = Database::empty(&r);
        db.insert(cust, Tuple::new([Value::int(1), Value::int(1)]));
        assert!(cc.satisfied(&db, &dm).unwrap());
        db.insert(cust, Tuple::new([Value::int(2), Value::int(7)]));
        assert!(!cc.satisfied(&db, &dm).unwrap());
    }

    #[test]
    fn constraint_set_language_and_fast_path_flags() {
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let mut v = ConstraintSet::empty();
        assert!(v.is_ind_set());
        assert_eq!(v.language(), QueryLanguage::Inds);
        v.push(ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(cust, vec![0])),
            dcust,
            vec![0],
        ));
        assert!(v.is_ind_set());
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 1.").unwrap();
        v.push(ContainmentConstraint::into_empty(CcBody::Cq(q)));
        assert!(!v.is_ind_set());
        assert_eq!(v.language(), QueryLanguage::Cq);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn downward_closure_of_satisfaction() {
        // CC satisfaction with a monotone body is inherited by sub-databases:
        // the property the per-disjunct RCDP decider relies on.
        let (r, m) = schemas();
        let cust = r.rel_id("Cust").unwrap();
        let dcust = m.rel_id("DCust").unwrap();
        let q = parse_cq(&r, "Q(C) :- Cust(C, Cc), Cc = 1.").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(q),
            dcust,
            vec![0],
        )]);
        let mut dm = Database::empty(&m);
        for i in 0..4 {
            dm.insert(dcust, Tuple::new([Value::int(i)]));
        }
        let mut big = Database::empty(&r);
        for i in 0..4 {
            big.insert(cust, Tuple::new([Value::int(i), Value::int(1)]));
        }
        assert!(v.satisfied(&big, &dm).unwrap());
        let mut small = Database::empty(&r);
        small.insert(cust, Tuple::new([Value::int(2), Value::int(1)]));
        assert!(small.is_contained_in(&big));
        assert!(v.satisfied(&small, &dm).unwrap());
    }
}

//! Substrate microbenchmarks: the evaluators and constraint checkers the
//! deciders are built from.

use ric::prelude::*;
use ric_bench::harness;

fn chain_db(n: usize) -> (Schema, Database) {
    let s = Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap();
    let e = s.rel_id("E").unwrap();
    let mut db = Database::empty(&s);
    for i in 0..n as i64 {
        db.insert(e, Tuple::new([Value::int(i), Value::int(i + 1)]));
        db.insert(e, Tuple::new([Value::int(i), Value::int(i)])); // loops for joins
    }
    (s, db)
}

fn cq_eval() {
    let mut group = harness::group("substrate/cq_three_way_join");
    for n in [50usize, 200, 800] {
        let (s, db) = chain_db(n);
        let q = parse_cq(&s, "Q(W, Z) :- E(W, X), E(X, Y), E(Y, Z), W != Z.").unwrap();
        group.bench(n.to_string(), || {
            ric::query::eval::eval_cq(&q, &db).unwrap()
        });
    }
}

fn datalog_tc() {
    let mut group = harness::group("substrate/datalog_transitive_closure");
    group.sample_size(10);
    for n in [20usize, 60, 120] {
        let (s, db) = chain_db(n);
        let p = parse_program(&s, "Tc(X,Y) :- E(X,Y). Tc(X,Y) :- E(X,Z), Tc(Z,Y).", "Tc").unwrap();
        group.bench(n.to_string(), || p.eval(&db));
    }
}

fn constraint_check() {
    let mut group = harness::group("substrate/fd_containment_check");
    for n in [50usize, 200, 800] {
        let (s, db) = chain_db(n);
        let e = s.rel_id("E").unwrap();
        let fd = Fd::new(e, vec![0], vec![1]);
        let ccs = ric::constraints::compile::fd_to_ccs(&fd, &s);
        let dm = Database::with_relations(0);
        group.bench(n.to_string(), || {
            ccs.iter()
                .map(|cc| cc.satisfied(&db, &dm).unwrap())
                .collect::<Vec<_>>()
        });
    }
}

fn main() {
    cq_eval();
    datalog_tc();
    constraint_check();
}

//! Table I, Corollary 3.7: RCDP stays Σᵖ₂-complete when the master data and
//! constraints are *fixed* — only the query and database vary. The Σᵖ₂
//! reduction already uses a fixed (D_m, V); this bench varies only the
//! formula and shows the growth is carried entirely by the query.

use ric::prelude::*;
use ric_bench::{bench_budget, harness, rcdp_sigma2_instances};

fn fixed_master() {
    let mut group = harness::group("table1/rcdp_fixed_dm_v");
    group.sample_size(10);
    let instances = rcdp_sigma2_instances(&[(1, 1, 1), (1, 2, 2), (2, 2, 2), (2, 3, 3)]);
    // All instances share one (D_m, V): verified here, relied on below.
    for w in instances.windows(2) {
        assert_eq!(w[0].1.dm, w[1].1.dm);
        assert_eq!(w[0].1.v, w[1].1.v);
    }
    for (label, setting, q, db, truth) in instances {
        group.bench(&label, || {
            let v = rcdp(&setting, &q, &db, &bench_budget()).unwrap();
            assert_eq!(v.is_complete(), truth);
            v
        });
    }
}

fn main() {
    fixed_master();
}

//! Table II, (CQ, CQ) / (UCQ, UCQ) / (∃FO⁺, ∃FO⁺): RCQP is
//! NEXPTIME-complete (Theorem 4.5(2), via 2ⁿ×2ⁿ tiling). The honest shape
//! of that bound: *verifying* a witness database is cheap (RCDP is Σᵖ₂ and
//! fast here), while *finding* one blows up — the bench times witness
//! construction from the tiling oracle plus RCDP certification, per rank.

use ric::prelude::*;
use ric::reductions::tiling;
use ric_bench::{harness, tiling_instances};

fn witness_certification() {
    let mut group = harness::group("table2/rcqp_cq_tiling_witness");
    group.sample_size(10);
    for (label, inst) in tiling_instances(&[1, 2]) {
        let (setting, q) = tiling::to_rcqp_instance(&inst);
        let grid = inst.solve().expect("checkerboard tiles");
        group.bench(&label, || {
            let witness = tiling::tiling_witness(&setting.schema, &inst, &grid);
            let v = rcdp(&setting, &q, &witness, &SearchBudget::default()).unwrap();
            assert_eq!(v, Verdict::Complete);
            v
        });
    }
}

/// The E2-driven search on the tractable FD family (blocking witnesses).
fn blocking_search() {
    let mut group = harness::group("table2/rcqp_cq_blocking");
    group.sample_size(10);
    for n_depts in [1usize, 2, 3] {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1]);
        let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        // More constants in the query → larger Adom → larger pool.
        let eqs: Vec<String> = (0..n_depts).map(|d| format!("E != 'x{d}'")).collect();
        let src = format!("Q(E) :- Supt(E, 'd0'), E = 'e0', {}.", eqs.join(", "));
        let q: Query = parse_cq(&schema, &src).unwrap().into();
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        group.bench(format!("constants={n_depts}"), || {
            let verdict = rcqp(&setting, &q, &budget).unwrap();
            assert!(verdict.is_nonempty());
            verdict
        });
    }
}

fn main() {
    witness_certification();
    blocking_search();
}

//! Table II, Corollary 4.6: with fixed (D_m, V), RCQP drops from
//! NEXPTIME-complete to Πᵖ₃-complete for CQ/UCQ/∃FO⁺. The bench runs the
//! fixed-setting family of `ric::reductions::rcqp_pi3`: one (D_m, V) built
//! once, queries as the only varying input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ric::prelude::*;
use ric::reductions::rcqp_pi3;

fn fixed_setting_family(c: &mut Criterion) {
    let setting = rcqp_pi3::fixed_setting();
    let budget = SearchBudget { fresh_values: 3, ..SearchBudget::default() };
    let mut group = c.benchmark_group("table2/rcqp_fixed_dm_v");
    group.sample_size(10);
    for k in [0usize, 1, 2] {
        let bounded = rcqp_pi3::bounded_query(&setting, k);
        group.bench_function(BenchmarkId::from_parameter(format!("bounded/k={k}")), |b| {
            b.iter(|| {
                let v = rcqp(&setting, &bounded, &budget).unwrap();
                assert!(v.is_nonempty());
                v
            })
        });
    }
    let unbounded = rcqp_pi3::unbounded_query(&setting, 0);
    group.bench_function("unbounded/empty-verdict", |b| {
        b.iter(|| {
            let v = rcqp(&setting, &unbounded, &budget).unwrap();
            assert_eq!(v, QueryVerdict::Empty);
            v
        })
    });
    group.finish();
}

criterion_group!(benches, fixed_setting_family);
criterion_main!(benches);

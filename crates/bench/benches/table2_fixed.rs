//! Table II, Corollary 4.6: with fixed (D_m, V), RCQP drops from
//! NEXPTIME-complete to Πᵖ₃-complete for CQ/UCQ/∃FO⁺. The bench runs the
//! fixed-setting family of `ric::reductions::rcqp_pi3`: one (D_m, V) built
//! once, queries as the only varying input.

use ric::prelude::*;
use ric::reductions::rcqp_pi3;
use ric_bench::harness;

fn fixed_setting_family() {
    let setting = rcqp_pi3::fixed_setting();
    let budget = SearchBudget {
        fresh_values: 3,
        ..SearchBudget::default()
    };
    let mut group = harness::group("table2/rcqp_fixed_dm_v");
    group.sample_size(10);
    for k in [0usize, 1, 2] {
        let bounded = rcqp_pi3::bounded_query(&setting, k);
        group.bench(format!("bounded/k={k}"), || {
            let v = rcqp(&setting, &bounded, &budget).unwrap();
            assert!(v.is_nonempty());
            v
        });
    }
    let unbounded = rcqp_pi3::unbounded_query(&setting, 0);
    group.bench("unbounded/empty-verdict", || {
        let v = rcqp(&setting, &unbounded, &budget).unwrap();
        assert_eq!(v, QueryVerdict::Empty);
        v
    });
}

fn main() {
    fixed_setting_family();
}

//! Table I, undecidable rows (Theorem 3.1): RCDP for FO/FP. The bounded
//! semi-decision procedure finds incompleteness witnesses when the encoded
//! 2-head DFA accepts a short word, and burns its whole budget otherwise —
//! the bench shows the cost of both outcomes as the extension bound grows.

use ric::prelude::*;
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric_bench::harness;

fn bounded_search() {
    let mut group = harness::group("table1/rcdp_fp_bounded");
    group.sample_size(10);
    for (name, dfa, expect_witness) in [
        ("nonempty_language", TwoHeadDfa::ones(), true),
        ("empty_language", TwoHeadDfa::empty_language(), false),
    ] {
        let (setting, q, db) = to_rcdp_instance(&dfa);
        for max_delta in [2usize, 3] {
            let budget = SearchBudget {
                max_delta_tuples: max_delta,
                fresh_values: 2,
                max_candidates: 500_000,
                ..SearchBudget::default()
            };
            group.bench(format!("{name}/delta<={max_delta}"), || {
                let v = rcdp(&setting, &q, &db, &budget).unwrap();
                if expect_witness && max_delta >= 3 {
                    assert!(v.is_incomplete());
                }
                v
            });
        }
    }
}

fn main() {
    bounded_search();
}

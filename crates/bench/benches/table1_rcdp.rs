//! Table I, decidable rows: RCDP is Σᵖ₂-complete for (CQ, INDs), (CQ, CQ),
//! (UCQ, UCQ), (∃FO⁺, ∃FO⁺) — Theorem 3.6. Times the exact decider on
//! typical master-data workloads and on the ∀*∃*-3SAT hardness instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ric::prelude::*;
use ric_bench::{bench_budget, rcdp_sigma2_instances, rcdp_workloads};

fn workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/rcdp_cq_inds_workload");
    for (label, inst) in rcdp_workloads(&[5, 10, 20, 40]) {
        group.bench_with_input(BenchmarkId::from_parameter(&label), &inst, |b, inst| {
            b.iter(|| {
                let v = rcdp(&inst.setting, &inst.query, &inst.db, &bench_budget()).unwrap();
                assert_eq!(v.is_complete(), inst.complete);
                v
            })
        });
    }
    group.finish();
}

fn sigma2_hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/rcdp_sigma2_reduction");
    group.sample_size(10);
    for (label, setting, q, db, truth) in
        rcdp_sigma2_instances(&[(1, 1, 1), (2, 2, 2), (2, 2, 3), (3, 2, 3)])
    {
        group.bench_function(BenchmarkId::from_parameter(&label), |b| {
            b.iter(|| {
                let v = rcdp(&setting, &q, &db, &bench_budget()).unwrap();
                assert_eq!(v.is_complete(), truth);
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, workloads, sigma2_hardness);
criterion_main!(benches);

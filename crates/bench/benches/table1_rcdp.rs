//! Table I, decidable rows: RCDP is Σᵖ₂-complete for (CQ, INDs), (CQ, CQ),
//! (UCQ, UCQ), (∃FO⁺, ∃FO⁺) — Theorem 3.6. Times the exact decider on
//! typical master-data workloads and on the ∀*∃*-3SAT hardness instances.

use ric::prelude::*;
use ric_bench::{bench_budget, harness, rcdp_sigma2_instances, rcdp_workloads};

fn workloads() {
    let mut group = harness::group("table1/rcdp_cq_inds_workload");
    for (label, inst) in rcdp_workloads(&[5, 10, 20, 40]) {
        group.bench(&label, || {
            let v = rcdp(&inst.setting, &inst.query, &inst.db, &bench_budget()).unwrap();
            assert_eq!(v.is_complete(), inst.complete);
            v
        });
    }
}

fn sigma2_hardness() {
    let mut group = harness::group("table1/rcdp_sigma2_reduction");
    group.sample_size(10);
    for (label, setting, q, db, truth) in
        rcdp_sigma2_instances(&[(1, 1, 1), (2, 2, 2), (2, 2, 3), (3, 2, 3)])
    {
        group.bench(&label, || {
            let v = rcdp(&setting, &q, &db, &bench_budget()).unwrap();
            assert_eq!(v.is_complete(), truth);
            v
        });
    }
}

fn main() {
    workloads();
    sigma2_hardness();
}

//! Table II, (CQ/UCQ/∃FO⁺, INDs): RCQP is coNP-complete (Theorem 4.5(1)).
//! Times the syntactic E3/E4 decider on the 3SAT reduction across the
//! SAT/UNSAT transition.

use ric::prelude::*;
use ric_bench::{bench_budget, harness, rcqp_conp_instances};

fn conp() {
    let mut group = harness::group("table2/rcqp_inds_3sat");
    group.sample_size(10);
    for (label, setting, q, nonempty) in rcqp_conp_instances(&[(2, 4), (3, 6), (4, 8), (4, 16)]) {
        group.bench(&label, || {
            let v = rcqp(&setting, &q, &bench_budget()).unwrap();
            assert_eq!(v.is_nonempty(), nonempty);
            v
        });
    }
}

fn main() {
    conp();
}

//! Table II, undecidable rows (Theorem 4.1): RCQP for FO/FP. Only bounded
//! evidence is possible; the bench times the candidate/refutation sweep on
//! the 2-head DFA reduction.

use ric::prelude::*;
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric_bench::harness;

fn bounded_rcqp() {
    let mut group = harness::group("table2/rcqp_fp_bounded");
    group.sample_size(10);
    for (name, dfa) in [
        ("nonempty_language", TwoHeadDfa::ones()),
        ("empty_language", TwoHeadDfa::empty_language()),
    ] {
        let (setting, q, _db) = to_rcdp_instance(&dfa);
        let budget = SearchBudget {
            max_delta_tuples: 2,
            fresh_values: 1,
            max_candidates: 50_000,
            ..SearchBudget::default()
        };
        group.bench(name, || {
            let v = rcqp(&setting, &q, &budget).unwrap();
            assert!(matches!(v, QueryVerdict::Unknown { .. }));
            v
        });
    }
}

fn main() {
    bounded_rcqp();
}

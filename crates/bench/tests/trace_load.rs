//! Hardening tests for the `ric-trace` ingestion path ([`ric_bench::trace_load`]):
//! a real traced decision stream parses into segments, and every way the
//! stream can be damaged — torn mid-record by a dying writer, non-JSON
//! garbage, missing or mistyped fields, unknown kinds, events before any
//! decision span — is a typed [`TraceLoadError`] carrying the 1-based line
//! number, never a panic.

use ric::prelude::*;
use ric::JsonlSink;
use ric_bench::trace_load::{load_trace, parse_trace, TraceLoadError};

/// A real trace: one RCDP decision recorded through a traced JSONL sink,
/// exactly what `try_rcdp_probed` leaves behind in a trace file.
fn fixture_trace() -> String {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(dcust, Tuple::new([Value::str("c1")]));
    dm.insert(dcust, Tuple::new([Value::str("c2")]));
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));

    let sink = JsonlSink::new(Vec::new());
    let trace = TraceState::new();
    ric::try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&sink).with_trace(&trace),
    )
    .unwrap();
    String::from_utf8(sink.into_inner()).unwrap()
}

#[test]
fn a_real_traced_decision_parses_into_one_segment() {
    let text = fixture_trace();
    let segments = parse_trace(&text).expect("the fixture trace must parse");
    assert_eq!(segments.len(), 1, "one decision, one segment");
    let seg = &segments[0];
    assert_eq!(seg.outcome(), Some("incomplete"));
    assert!(seg.counters.get("rcdp.valuations").copied().unwrap_or(0) >= 1);
    let tree = seg.tree.clone().finish();
    tree.require_decision()
        .expect("a well-formed decision tree");
    assert_eq!(tree.roots().len(), 1);
}

#[test]
fn a_record_torn_mid_write_reports_its_line_number() {
    let text = fixture_trace();
    // Kill the process mid-write: keep line 1 whole and tear line 2 in half.
    let first_nl = text.find('\n').expect("fixture has multiple lines");
    let second_len = text[first_nl + 1..]
        .find('\n')
        .expect("fixture has multiple lines");
    assert!(second_len >= 2, "line 2 long enough to tear");
    let torn = &text[..first_nl + 1 + second_len / 2];
    let err = parse_trace(torn).expect_err("a torn record must not parse");
    assert_eq!(err.line, 2, "the tear is on line 2: {err}");
    assert!(
        err.to_string().starts_with("line 2: "),
        "display locates the line: {err}"
    );
}

#[test]
fn every_truncation_of_a_valid_trace_is_a_typed_error_or_a_valid_prefix() {
    let text = fixture_trace();
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        // Must never panic; a prefix that happens to end on a record
        // boundary may legitimately parse (fewer events, same shape).
        let _ = parse_trace(&text[..cut]);
    }
}

#[test]
fn garbage_and_schema_violations_carry_the_offending_line() {
    let root = r#"{"kind":"span_open","name":"decision","id":1,"parent":0,"at_tick":0}"#;
    for (doc, line, needle) in [
        ("not json at all".to_string(), 1, "line 1"),
        (format!("{root}\nnot json at all"), 2, "line 2"),
        (
            format!("{root}\n{{\"kind\":\"count\",\"name\":\"x\"}}"),
            2,
            "missing field \"delta\"",
        ),
        (
            format!("{root}\n{{\"kind\":\"count\",\"name\":\"x\",\"delta\":-1}}"),
            2,
            "not a non-negative integer",
        ),
        (
            format!("{root}\n{{\"kind\":\"count\",\"name\":7,\"delta\":1}}"),
            2,
            "not a string",
        ),
        (
            format!("{root}\n{{\"kind\":\"wat\"}}"),
            2,
            "unknown event kind",
        ),
        ("{\"kind\":\"wat\"}".to_string(), 1, "unknown event kind"),
    ] {
        let err = parse_trace(&doc).expect_err(&format!("{doc:?} must be rejected"));
        assert_eq!(err.line, line, "wrong line for {doc:?}: {err}");
        assert!(
            err.to_string().contains(needle),
            "error for {doc:?} should mention {needle:?}: {err}"
        );
    }
}

#[test]
fn events_before_any_decision_span_are_rejected() {
    let err = parse_trace(r#"{"kind":"count","name":"x","delta":1}"#)
        .expect_err("a counter before any root span must be rejected");
    assert_eq!(err.line, 1);
    assert!(
        err.to_string().contains("before any root decision span"),
        "{err}"
    );
}

#[test]
fn empty_and_unreadable_traces_are_whole_file_errors() {
    let err = parse_trace("").expect_err("an empty trace has no decisions");
    assert_eq!(
        err,
        TraceLoadError {
            line: 0,
            message: "no decision spans found".to_string(),
        }
    );
    assert_eq!(err.to_string(), "no decision spans found");

    let err = load_trace("/nonexistent/ric-trace-fixture.jsonl")
        .expect_err("a missing file must be a typed error");
    assert_eq!(err.line, 0);
    assert!(
        err.to_string()
            .contains("/nonexistent/ric-trace-fixture.jsonl"),
        "the error names the path: {err}"
    );
}

//! End-to-end test of the `ric-trace plan` pipeline: a real planned-engine
//! decision recorded through the JSONL sink parses back into a segment whose
//! [`ric_bench::plan_report`] names the join order, the per-atom estimates,
//! and the planned-vs-actual cardinalities — and an indexed-engine trace of
//! the same decision reports no plan at all.

use ric::prelude::*;
use ric::JsonlSink;
use ric_bench::plan_report::{parse_cards, plan_report};
use ric_bench::trace_load::parse_trace;

/// A setting whose constraint carries a CQ body (a two-atom join), so the
/// planned engine actually compiles plans — pure-IND sets short-circuit to
/// the containment fast path and plan nothing.
fn instance() -> (Setting, Query, Database) {
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
        RelationSchema::infinite("Dept", &["dept"]),
    ])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let dept = schema.rel_id("Dept").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(dcust, Tuple::new([Value::str("c1")]));
    dm.insert(dcust, Tuple::new([Value::str("c2")]));
    let body = parse_cq(&schema, "Q(C) :- Supt(E, D, C), Dept(D).").unwrap();
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(body),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();
    let mut db = Database::empty(&schema);
    db.insert(dept, Tuple::new([Value::str("d0")]));
    db.insert(
        supt,
        Tuple::new([Value::str("e0"), Value::str("d0"), Value::str("c1")]),
    );
    (setting, q, db)
}

fn record_trace(budget: &SearchBudget) -> String {
    let (setting, q, db) = instance();
    let sink = JsonlSink::new(Vec::new());
    let trace = TraceState::new();
    ric::try_rcdp_probed(
        &setting,
        &q,
        &db,
        budget,
        Probe::attached(&sink).with_trace(&trace),
    )
    .unwrap();
    String::from_utf8(sink.into_inner()).unwrap()
}

#[test]
fn planned_trace_reports_join_order_estimates_and_cardinalities() {
    let budget = SearchBudget::default().with_engine(Engine::planned(1));
    let segments = parse_trace(&record_trace(&budget)).expect("planned trace parses");
    assert_eq!(segments.len(), 1);
    let report = plan_report(&segments[0]).expect("a planned decision has a plan report");
    assert!(
        report.contains("compiled 1 constraint plan set(s)"),
        "one CQ-bodied constraint compiles: {report}"
    );
    // The join order names both body relations with per-atom estimates.
    assert!(report.contains("Supt["), "join order names Supt: {report}");
    assert!(report.contains("Dept["), "join order names Dept: {report}");
    assert!(
        report.contains("est="),
        "per-atom estimates render: {report}"
    );
    assert!(report.contains("cost="), "per-plan cost renders: {report}");
    // The cards note compares planner statistics with the decision database;
    // here they are the same database, so planned == actual.
    let cards_note = segments[0]
        .notes
        .iter()
        .find(|(name, _)| name == "plan.cards")
        .map(|(_, detail)| detail.as_str())
        .expect("planned decisions emit plan.cards");
    let cards = parse_cards(cards_note);
    assert_eq!(cards.len(), 2, "one row per body relation: {cards_note}");
    for row in &cards {
        assert_eq!(
            row.planned, row.actual,
            "stats db == decision db, so no drift: {cards_note}"
        );
        assert_eq!(row.planned, 1, "each body relation holds one tuple");
    }
    assert!(report.contains("1.00x"), "drift ratio renders: {report}");
}

#[test]
fn indexed_trace_has_no_plan_report() {
    let budget = SearchBudget::default().with_engine(Engine::Indexed);
    let segments = parse_trace(&record_trace(&budget)).expect("indexed trace parses");
    assert_eq!(segments.len(), 1);
    assert!(
        plan_report(&segments[0]).is_none(),
        "indexed decisions record no plan telemetry"
    );
    assert!(
        segments[0].counters.keys().all(|k| !k.starts_with("plan.")),
        "no plan.* counters under Engine::Indexed"
    );
}

//! `bench_resume` — measure the cost of deciding in installments.
//!
//! For the largest Table I / Table II cells the workspace benches, this
//! binary times each decision two ways:
//!
//! * **from scratch** — one uninterrupted `try_rcdp_resumed(…, None)` run at
//!   the full budget;
//! * **resumed** — the same decision completed in K installments: installment
//!   `i` runs at roughly `i/K` of the ticks the full decision needs, dies on
//!   its budget, and hands its [`ric::Checkpoint`] to installment `i+1`; the
//!   final installment runs at the full budget and must return the identical
//!   verdict (the resume invariant of DESIGN.md §10, pinned by the
//!   `resume_differential` test suite — this binary re-asserts it on every
//!   cell).
//!
//! The interesting number is `overhead_ratio`: the wall time of the *final*
//! installment — the one that picks up the checkpoint and completes —
//! divided by the from-scratch time. That is the operational question after
//! an interruption: finish from the checkpoint, or throw it away and re-run?
//! Resume overhead (checkpoint validation, frontier replay, meter priming,
//! and re-running the one unit that was in flight when the budget died) must
//! stay within 10% of a from-scratch re-run — and for chunk- and
//! size-granular frontiers the resumed run skips the committed units
//! entirely, so the ratio is typically well *below* 1. The artifact also
//! records `resumed_total_micros`, the sum over all K installments, for the
//! setup-amortization picture (each installment re-runs query evaluation and
//! active-domain construction, which resume deliberately does not persist).
//!
//! Writes `BENCH_RESUME.json` to the current directory; see EXPERIMENTS.md
//! for the schema. Run with
//! `cargo run --release -p ric-bench --bin bench_resume`.

use std::time::Instant;

use ric::prelude::*;
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric::reductions::workload::{planted_rcdp, WorkloadParams};
use ric::reductions::{qbf, rcdp_sigma2, rcqp_conp, sat};
use ric::telemetry::Json;
use ric::{rcdp_probed, try_rcdp_resumed, try_rcqp_resumed, Engine, SplitMix64};

/// Which meter the cell's search burns, and therefore which budget knob the
/// installment schedule scales.
#[derive(Clone, Copy)]
enum TickKind {
    /// Exact enumeration: `max_valuations` / the `rcdp.valuations` counter.
    Valuations,
    /// Bounded extension search: `max_candidates` / `semidecide.candidates`.
    Candidates,
}

impl TickKind {
    fn counter(self) -> &'static str {
        match self {
            TickKind::Valuations => "rcdp.valuations",
            TickKind::Candidates => "semidecide.candidates",
        }
    }

    fn scaled(self, base: &SearchBudget, ticks: u64) -> SearchBudget {
        let mut b = *base;
        match self {
            TickKind::Valuations => b.max_valuations = ticks.max(1),
            TickKind::Candidates => b.max_candidates = ticks.max(1),
        }
        b
    }
}

struct ResumeCell {
    cell: String,
    engine: &'static str,
    k: u32,
    installments: u32,
    from_scratch_micros: u128,
    resumed_total_micros: u128,
    final_installment_micros: u128,
    overhead_ratio: f64,
    claim: &'static str,
    ok: bool,
    verdict_identical: bool,
    outcome: String,
}

impl ResumeCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("engine", Json::from(self.engine)),
            ("k", Json::from(u64::from(self.k))),
            ("installments", Json::from(u64::from(self.installments))),
            ("from_scratch_micros", Json::from(self.from_scratch_micros)),
            (
                "resumed_total_micros",
                Json::from(self.resumed_total_micros),
            ),
            (
                "final_installment_micros",
                Json::from(self.final_installment_micros),
            ),
            ("overhead_ratio", Json::from(self.overhead_ratio)),
            ("claim", Json::from(self.claim)),
            ("ok", Json::from(self.ok)),
            ("verdict_identical", Json::from(self.verdict_identical)),
            ("outcome", Json::from(self.outcome.as_str())),
        ])
    }
}

/// Smallest wall time over `samples` identical runs, in µs. Every run here
/// is deterministic and read-only over its inputs, so min-of-N is the right
/// noise filter.
fn time_min<T>(samples: u32, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..samples {
        let start = Instant::now();
        let value = f();
        let micros = start.elapsed().as_micros();
        if best.as_ref().is_none_or(|(b, _)| micros < *b) {
            best = Some((micros, value));
        }
    }
    best.unwrap_or_else(|| unreachable!("samples >= 1"))
}

const SAMPLES: u32 = 9;

/// Run one RCDP cell at engine × K: time from-scratch, count its ticks, then
/// time the K-installment schedule at `ceil(T·i/K)` tick budgets.
#[allow(clippy::too_many_arguments)]
fn rcdp_cell(
    label: &str,
    engine: Engine,
    engine_name: &'static str,
    k: u32,
    kind: TickKind,
    base: &SearchBudget,
    setting: &Setting,
    query: &Query,
    db: &Database,
) -> ResumeCell {
    let budget = SearchBudget { engine, ..*base };

    // Tick count of the uninterrupted decision, read off a probed run.
    let collector = Collector::new();
    let _ = rcdp_probed(setting, query, db, &budget, Probe::attached(&collector))
        .expect("bench instance must decide");
    let total_ticks = collector
        .report()
        .counters
        .get(kind.counter())
        .copied()
        .unwrap_or(0);

    let (from_scratch_micros, (baseline, no_cp)) = time_min(SAMPLES, || {
        try_rcdp_resumed(setting, query, db, &budget, None).expect("bench instance must decide")
    });
    assert!(
        no_cp.is_none(),
        "{label}: from-scratch run must be conclusive at the full budget"
    );

    // The installment schedule: die at ~i/K of the full tick count, resume,
    // and finish at the full budget. Each installment is itself deterministic
    // for a fixed prior checkpoint, so each is timed by min-of-N.
    let mut prior: Option<Checkpoint> = None;
    let mut resumed_total_micros = 0u128;
    let mut final_installment_micros = 0u128;
    let mut installments = 0u32;
    let mut final_verdict: Option<Verdict> = None;
    for i in 1..=k {
        let slice = if i == k {
            budget
        } else {
            kind.scaled(&budget, (total_ticks * u64::from(i)).div_ceil(u64::from(k)))
        };
        let prior_ref = prior.clone();
        let (micros, (verdict, checkpoint)) = time_min(SAMPLES, || {
            try_rcdp_resumed(setting, query, db, &slice, prior_ref.as_ref())
                .expect("resumed installment must not error")
        });
        resumed_total_micros += micros;
        final_installment_micros = micros;
        installments = i;
        match checkpoint {
            Some(cp) => prior = Some(cp),
            None => {
                final_verdict = Some(verdict);
                break;
            }
        }
    }
    let final_verdict =
        final_verdict.expect("the full-budget final installment must be conclusive");

    let overhead_ratio = final_installment_micros as f64 / from_scratch_micros.max(1) as f64;
    ResumeCell {
        cell: label.to_string(),
        engine: engine_name,
        k,
        installments,
        from_scratch_micros,
        resumed_total_micros,
        final_installment_micros,
        overhead_ratio,
        claim: "final_installment <= 1.10 * from_scratch",
        ok: overhead_ratio <= 1.10,
        verdict_identical: final_verdict == baseline,
        outcome: format!("{final_verdict}"),
    }
}

/// The RCQP cell: the frontier is coarse (`Restart`), so the claim is only
/// that *finishing from a checkpoint* costs no more than starting over.
fn rcqp_cell(label: &str, base: &SearchBudget, setting: &Setting, query: &Query) -> ResumeCell {
    let (from_scratch_micros, (baseline, no_cp)) = time_min(SAMPLES, || {
        try_rcqp_resumed(setting, query, base, None).expect("bench instance must decide")
    });
    assert!(no_cp.is_none(), "{label}: from-scratch run must conclude");

    // Installment 1 at a starvation budget; whatever checkpoint (if any) it
    // leaves feeds the full-budget installment 2.
    let tiny = SearchBudget {
        max_valuations: 1,
        max_candidates: 1,
        ..*base
    };
    let (first_micros, (first_verdict, cp)) = time_min(SAMPLES, || {
        try_rcqp_resumed(setting, query, &tiny, None).expect("starved installment must not error")
    });
    let (resumed_total_micros, final_installment_micros, installments, final_verdict) = match cp {
        Some(cp) => {
            let (final_micros, (verdict, cp2)) = time_min(SAMPLES, || {
                try_rcqp_resumed(setting, query, base, Some(&cp))
                    .expect("resumed installment must not error")
            });
            assert!(cp2.is_none(), "{label}: full-budget resume must conclude");
            (first_micros + final_micros, final_micros, 2, verdict)
        }
        // The cell decided inside the starvation budget (e.g. the syntactic
        // IND check, which never meters): nothing to resume.
        None => (first_micros, first_micros, 1, first_verdict),
    };

    let ratio = final_installment_micros as f64 / from_scratch_micros.max(1) as f64;
    ResumeCell {
        cell: label.to_string(),
        engine: "indexed",
        k: 2,
        installments,
        from_scratch_micros,
        resumed_total_micros,
        final_installment_micros,
        overhead_ratio: ratio,
        claim: "final_installment <= 1.10 * from_scratch (Restart frontier)",
        ok: ratio <= 1.10,
        verdict_identical: final_verdict == baseline,
        outcome: format!("{final_verdict}"),
    }
}

fn main() {
    let mut cells: Vec<ResumeCell> = Vec::new();

    // Table I, (CQ, INDs): the largest planted master-data workload.
    {
        let mut rng = SplitMix64::seed_from_u64(7);
        let params = WorkloadParams {
            n_customers: 32,
            n_employees: 4,
            n_support: 64,
        };
        let inst = planted_rcdp(&params, true, &mut rng);
        for (engine, name) in [
            (Engine::Indexed, "indexed"),
            (Engine::Parallel { workers: 4 }, "parallel"),
        ] {
            for k in [2u32, 5] {
                cells.push(rcdp_cell(
                    "(CQ, INDs) planted n=32 complete",
                    engine,
                    name,
                    k,
                    TickKind::Valuations,
                    &SearchBudget::default(),
                    &inst.setting,
                    &inst.query,
                    &inst.db,
                ));
            }
        }
    }

    // Table I, (CQ, INDs) hardness: the largest ∀∃-3SAT cell the tables run.
    {
        let mut rng = SplitMix64::seed_from_u64(11);
        let phi = qbf::ForallExists::random(6, 6, 12, &mut rng);
        let (setting, q, db) = rcdp_sigma2::to_rcdp_instance(&phi);
        for (engine, name) in [
            (Engine::Indexed, "indexed"),
            (Engine::Parallel { workers: 4 }, "parallel"),
        ] {
            for k in [2u32, 5] {
                cells.push(rcdp_cell(
                    "(CQ, INDs) sigma2 forall=6/exists=6/clauses=12",
                    engine,
                    name,
                    k,
                    TickKind::Valuations,
                    &SearchBudget::default(),
                    &setting,
                    &q,
                    &db,
                ));
            }
        }
    }

    // Table I, (FP, CQ): the bounded semi-decision (size-granular frontier).
    {
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::ones());
        let budget = SearchBudget {
            max_delta_tuples: 3,
            fresh_values: 2,
            max_candidates: 500_000,
            ..SearchBudget::default()
        };
        for (engine, name) in [
            (Engine::Indexed, "indexed"),
            (Engine::Parallel { workers: 4 }, "parallel"),
        ] {
            for k in [2u32, 5] {
                cells.push(rcdp_cell(
                    "(FP, CQ) DFA L nonempty",
                    engine,
                    name,
                    k,
                    TickKind::Candidates,
                    &budget,
                    &setting,
                    &q,
                    &db,
                ));
            }
        }
    }

    // Table II, (CQ, INDs): the largest 3SAT RCQP cell (Restart frontier).
    {
        let mut rng = SplitMix64::seed_from_u64(13);
        let phi = sat::Cnf::random_3sat(8, 34, &mut rng);
        let (setting, q) = rcqp_conp::to_rcqp_instance(&phi);
        cells.push(rcqp_cell(
            "(CQ, INDs) rcqp 3SAT vars=8/clauses=34",
            &SearchBudget::default(),
            &setting,
            &q,
        ));
    }

    println!(
        "{:<46} {:<8} {:>2} {:>12} {:>12} {:>8}  ok",
        "cell", "engine", "K", "scratch µs", "final µs", "ratio"
    );
    println!("{}", "-".repeat(100));
    let mut all_ok = true;
    for c in &cells {
        all_ok &= c.ok && c.verdict_identical;
        println!(
            "{:<46} {:<8} {:>2} {:>12} {:>12} {:>7.2}x  {}{}",
            c.cell,
            c.engine,
            c.k,
            c.from_scratch_micros,
            c.final_installment_micros,
            c.overhead_ratio,
            if c.ok { "ok" } else { "OVER BUDGET" },
            if c.verdict_identical {
                ""
            } else {
                "  VERDICT DRIFT"
            },
        );
    }

    let doc = Json::obj([
        ("schema", Json::from("bench_resume/v1")),
        ("source", Json::from("bench_resume")),
        (
            "claim",
            Json::from(
                "finishing a decision from its checkpoint costs <= 1.10x a from-scratch re-run \
                 at every cell (the final installment picks up the frontier instead of redoing \
                 committed work)",
            ),
        ),
        ("all_ok", Json::from(all_ok)),
        (
            "cells",
            Json::arr(cells.iter().map(ResumeCell::to_json).collect::<Vec<_>>()),
        ),
    ]);
    std::fs::write("BENCH_RESUME.json", format!("{}\n", doc.pretty()))
        .expect("write BENCH_RESUME.json");
    println!(
        "\nwrote BENCH_RESUME.json ({} cells, all_ok={all_ok})",
        cells.len()
    );
}

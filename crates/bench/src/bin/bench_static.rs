//! `bench_static` — symbolic pre-decision reasoning vs. the plain prepared
//! path.
//!
//! The `ric-reason` prover claims two speedups, measured here as A/B cells
//! (A = full-`V` [`PreparedSetting`], B = [`ReasonedSetting`]; preparation
//! and the one-shot reasoning run are hoisted out of both timed loops):
//!
//! * **redundant-V** — `V` carries one load-bearing IND plus `k` expensive
//!   CQ constraints the IND implies. The reasoner drops the implied `k`
//!   from the per-candidate recheck loop; the decision (a full `Complete`
//!   enumeration, the recheck-heaviest verdict) should get ≥2× faster at
//!   the median;
//! * **statically-decidable** — a denial kills the query outright, so the
//!   certified static verdict answers `Complete` in O(partial closure)
//!   while the plain path enumerates every candidate; ≥10× at the median.
//!
//! Every cell re-asserts verdict identity between the two arms on every
//! repetition (`verdicts_identical`) — the same pin `reason_differential.rs`
//! enforces across engines and seeds — and `all_ok` summarizes the claims.
//!
//! Writes `BENCH_STATIC.json` to the current directory; see EXPERIMENTS.md
//! for the schema. Run with
//! `cargo run --release -p ric-bench --bin bench_static`.

use std::time::Instant;

use ric::prelude::*;
use ric::{try_rcdp_prepared, try_rcdp_static, Engine, ReasonedSetting};

const REPS: usize = 9;

struct StaticCell {
    cell: String,
    engine: &'static str,
    workload: &'static str,
    n: usize,
    dropped: usize,
    statically_complete: bool,
    median_full_micros: u128,
    median_reasoned_micros: u128,
    speedup_median: f64,
    floor: f64,
    claim: String,
    ok: bool,
    verdicts_identical: bool,
}

impl StaticCell {
    fn to_json(&self) -> ric::telemetry::Json {
        use ric::telemetry::Json;
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("engine", Json::from(self.engine)),
            ("workload", Json::from(self.workload)),
            ("n", Json::from(self.n as u64)),
            ("dropped", Json::from(self.dropped as u64)),
            ("statically_complete", Json::from(self.statically_complete)),
            ("median_full_micros", Json::from(self.median_full_micros)),
            (
                "median_reasoned_micros",
                Json::from(self.median_reasoned_micros),
            ),
            ("speedup_median", Json::from(self.speedup_median)),
            ("floor", Json::from(self.floor)),
            ("claim", Json::from(self.claim.as_str())),
            ("ok", Json::from(self.ok)),
            ("verdicts_identical", Json::from(self.verdicts_identical)),
        ])
    }
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The redundant-V workload: `Supt(eid, dept, cid)` IND-bounded by the
/// master customer list, plus `k` implied CQ restatements of the bound,
/// each with `atoms` join atoms to make the per-candidate recheck
/// expensive. `D` already supports every master customer, so the decision
/// is a full `Complete` enumeration.
fn redundant_workload(n_customers: usize, k: usize, atoms: usize) -> (Setting, Query, Database) {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .expect("fixed schema");
    let supt = schema.rel_id("Supt").expect("fixed relation");
    let master = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])])
        .expect("fixed schema");
    let dcust = master.rel_id("DCust").expect("fixed relation");
    let mut dm = Database::empty(&master);
    for c in 0..n_customers {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let mut ccs = vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![2])),
        dcust,
        vec![0],
    )];
    for _ in 0..k {
        // q(c) :- Supt(e0,d0,c), Supt(e1,d1,c), …: semantically the IND
        // again (every disjunct projects a supported cid), but costed as an
        // `atoms`-way self-join on every candidate recheck.
        let mut b = Cq::builder();
        let c = b.var("c");
        for a in 0..atoms {
            let e = b.var(&format!("e{a}"));
            let d = b.var(&format!("d{a}"));
            b = b.atom(supt, vec![Term::Var(e), Term::Var(d), Term::Var(c)]);
        }
        let cq = b.head_vars(vec![c]).build();
        ccs.push(ContainmentConstraint::into_master(
            CcBody::Cq(cq),
            dcust,
            vec![0],
        ));
    }
    let setting = Setting::new(schema.clone(), master, dm, ConstraintSet::new(ccs));
    let query: Query = parse_cq(&schema, "Q(C) :- Supt(E, D, C).")
        .expect("fixed query")
        .into();
    let mut db = Database::empty(&schema);
    for c in 0..n_customers {
        db.insert(
            supt,
            Tuple::new([
                Value::str(format!("e{c}")),
                Value::str("d0"),
                Value::str(format!("c{c}")),
            ]),
        );
    }
    (setting, query, db)
}

/// The statically-decidable workload: the query's relation is denied
/// outright, so every legal database keeps it empty — but the plain path
/// still enumerates candidates drawn from a master list of `n` values.
fn static_workload(n: usize) -> (Setting, Query, Database) {
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .expect("fixed schema");
    let r = schema.rel_id("R").expect("fixed relation");
    let srel = schema.rel_id("S").expect("fixed relation");
    let master =
        Schema::from_relations(vec![RelationSchema::infinite("Rm", &["a"])]).expect("fixed schema");
    let rm = master.rel_id("Rm").expect("fixed relation");
    let mut dm = Database::empty(&master);
    for v in 0..n {
        dm.insert(rm, Tuple::new([Value::int(v as i64)]));
    }
    let mut b = Cq::builder();
    let x = b.var("x");
    let y = b.var("y");
    let denial = b.atom(r, vec![Term::Var(x), Term::Var(y)]).build();
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_empty(CcBody::Cq(denial)),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            rm,
            vec![0],
        ),
    ]);
    let setting = Setting::new(schema.clone(), master, dm, v);
    let query: Query = parse_cq(&schema, "Q(X) :- R(X, Y).")
        .expect("fixed query")
        .into();
    let mut db = Database::empty(&schema);
    for v in 0..n {
        db.insert(srel, Tuple::new([Value::int(v as i64)]));
    }
    (setting, query, db)
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    label: String,
    workload: &'static str,
    n: usize,
    engine: Engine,
    engine_name: &'static str,
    floor: f64,
    setting: &Setting,
    query: &Query,
    db: &Database,
) -> StaticCell {
    let budget = SearchBudget::default().with_engine(engine);
    let prepared = ric::prepare(setting, db, engine).expect("full-V preparation");
    let reasoned = ReasonedSetting::prepare(setting, query, db, engine, &budget)
        .expect("reasoned preparation");
    let mut full_micros = Vec::with_capacity(REPS);
    let mut reasoned_micros = Vec::with_capacity(REPS);
    let mut identical = true;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let vf = try_rcdp_prepared(&prepared, query, db, &budget).expect("full-V decision");
        full_micros.push(t0.elapsed().as_micros());
        let t1 = Instant::now();
        let vr = try_rcdp_static(&reasoned, db, &budget).expect("reasoned decision");
        reasoned_micros.push(t1.elapsed().as_micros());
        identical &= match (&vf, &vr) {
            (Verdict::Complete, Verdict::Complete) => true,
            (Verdict::Incomplete(a), Verdict::Incomplete(b)) => {
                a.delta == b.delta && a.new_answer == b.new_answer
            }
            (Verdict::Unknown { .. }, Verdict::Unknown { .. }) => true,
            _ => false,
        };
    }
    let median_full_micros = median(&mut full_micros).max(1);
    let median_reasoned_micros = median(&mut reasoned_micros).max(1);
    let speedup_median = median_full_micros as f64 / median_reasoned_micros as f64;
    StaticCell {
        cell: label,
        engine: engine_name,
        workload,
        n,
        dropped: reasoned.facts().dropped(),
        statically_complete: reasoned.facts().statically_complete,
        median_full_micros,
        median_reasoned_micros,
        speedup_median,
        floor,
        claim: format!("median reasoned decision >= {floor}x faster than full-V prepared"),
        ok: speedup_median >= floor,
        verdicts_identical: identical,
    }
}

fn main() {
    let mut cells: Vec<StaticCell> = Vec::new();
    for (engine, engine_name) in [
        (Engine::Indexed, "indexed"),
        (Engine::planned(1), "planned"),
    ] {
        for n in [24usize, 48] {
            let (setting, query, db) = redundant_workload(n, 6, 3);
            cells.push(run_cell(
                format!("redundant-V (1 IND + 6 implied 3-atom CQs) n={n}"),
                "redundant_v",
                n,
                engine,
                engine_name,
                2.0,
                &setting,
                &query,
                &db,
            ));
            let (setting, query, db) = static_workload(n);
            cells.push(run_cell(
                format!("statically-decidable (denial-killed query) n={n}"),
                "static_verdict",
                n,
                engine,
                engine_name,
                10.0,
                &setting,
                &query,
                &db,
            ));
        }
    }

    println!(
        "{:<50} {:<8} {:>10} {:>12} {:>8}  ok",
        "cell", "engine", "full µs", "reasoned µs", "speedup"
    );
    println!("{}", "-".repeat(100));
    let mut all_ok = true;
    for c in &cells {
        all_ok &= c.ok && c.verdicts_identical;
        println!(
            "{:<50} {:<8} {:>10} {:>12} {:>7.1}x  {}{}",
            c.cell,
            c.engine,
            c.median_full_micros,
            c.median_reasoned_micros,
            c.speedup_median,
            if c.ok {
                "ok".to_string()
            } else {
                format!("UNDER {}x", c.floor)
            },
            if c.verdicts_identical {
                ""
            } else {
                "  VERDICT DRIFT"
            },
        );
    }

    use ric::telemetry::Json;
    let doc = Json::obj([
        ("schema", Json::from("bench_static/v1")),
        ("source", Json::from("bench_static")),
        (
            "meta",
            Json::obj([
                ("schema_version", Json::from(1u64)),
                ("engine", Json::from("indexed+planned")),
                ("workers", Json::from(1u64)),
                ("deadline_ms", Json::from(0u64)),
            ]),
        ),
        (
            "claim",
            Json::from(
                "certified V-minimization makes recheck-heavy Complete decisions >= 2x faster, \
                 and certified static verdicts answer statically-decidable settings >= 10x \
                 faster, with verdicts identical to the full-V prepared path in every cell",
            ),
        ),
        ("all_ok", Json::from(all_ok)),
        (
            "cells",
            Json::arr(cells.iter().map(StaticCell::to_json).collect::<Vec<_>>()),
        ),
    ]);
    std::fs::write("BENCH_STATIC.json", format!("{}\n", doc.pretty()))
        .expect("write BENCH_STATIC.json");
    println!(
        "\nwrote BENCH_STATIC.json ({} cells, all_ok={all_ok})",
        cells.len()
    );
}

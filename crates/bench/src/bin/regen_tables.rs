//! Regenerate Tables I and II of the paper, empirically.
//!
//! For every cell of the complexity tables, run the corresponding decider on
//! generated instance families, validate the verdict against an independent
//! ground-truth oracle where one exists, and report the outcome and timing.
//! The *shape* of the paper's results is what must reproduce: decidable
//! cells decide (and match the oracle), undecidable cells return certified
//! witnesses or an honest `Unknown`, and the hardness reductions blow up
//! where the bounds say they must.
//!
//! Run with `cargo run --release -p ric-bench --bin regen_tables`.

use rand::SeedableRng;
use ric::prelude::*;
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric::reductions::workload::{planted_rcdp, WorkloadParams};
use ric::reductions::{qbf, rcdp_sigma2, rcqp_conp, rcqp_pi3, sat, tiling};
use std::time::Instant;

struct Row {
    cell: &'static str,
    paper: &'static str,
    outcome: String,
    micros: u128,
}

fn print_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "{:<34} {:<24} {:<46} {:>12}",
        "(L_Q, L_C)", "paper bound", "measured outcome", "time"
    );
    println!("{}", "-".repeat(120));
    for r in rows {
        println!(
            "{:<34} {:<24} {:<46} {:>9} µs",
            r.cell, r.paper, r.outcome, r.micros
        );
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros())
}

fn table1() -> Vec<Row> {
    let mut rows = Vec::new();
    let budget = SearchBudget::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // (CQ, INDs): Σᵖ₂-complete — typical workload + hardness reduction.
    {
        let params = WorkloadParams { n_customers: 25, n_employees: 4, n_support: 50 };
        let inst = planted_rcdp(&params, false, &mut rng);
        let (v, us) = timed(|| rcdp(&inst.setting, &inst.query, &inst.db, &budget).unwrap());
        rows.push(Row {
            cell: "(CQ, INDs) workload",
            paper: "Sigma-p-2-complete",
            outcome: format!("{v} (planted: incomplete)"),
            micros: us,
        });
    }
    {
        let mut agree = 0;
        let mut total_us = 0;
        let n = 4;
        for _ in 0..n {
            let phi = qbf::ForallExists::random(2, 2, 3, &mut rng);
            let truth = phi.eval();
            let (setting, q, db) = rcdp_sigma2::to_rcdp_instance(&phi);
            let (v, us) = timed(|| rcdp(&setting, &q, &db, &budget).unwrap());
            total_us += us;
            if v.is_complete() == truth {
                agree += 1;
            }
        }
        rows.push(Row {
            cell: "(CQ, INDs) forall-exists-3SAT",
            paper: "Sigma-p-2-hard (Thm 3.6)",
            outcome: format!("{agree}/{n} agree with QBF oracle"),
            micros: total_us / n as u128,
        });
    }
    // (CQ, CQ) / (UCQ, UCQ): same decider, CQ constraints (FD-compiled).
    {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1, 2]);
        let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
        let setting =
            Setting::new(schema.clone(), Schema::new(), Database::with_relations(0), v);
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).").unwrap().into();
        let mut db = Database::empty(&schema);
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str("d0"), Value::str("c0")]),
        );
        let (verdict, us) = timed(|| rcdp(&setting, &q, &db, &budget).unwrap());
        rows.push(Row {
            cell: "(CQ, CQ) FD-blocked",
            paper: "Sigma-p-2-complete",
            outcome: format!("{verdict} (Example 3.1: complete)"),
            micros: us,
        });
        let u: Query = parse_ucq(
            &schema,
            "Q(E, C) :- Supt(E, D, C), E = 'e0'. Q(E, C) :- Supt(E, D, C), E = 'e1'.",
        )
        .unwrap()
        .into();
        let (verdict, us) = timed(|| rcdp(&setting, &u, &db, &budget).unwrap());
        rows.push(Row {
            cell: "(UCQ, UCQ) per-disjunct",
            paper: "Sigma-p-2-complete",
            outcome: format!("{verdict}"),
            micros: us,
        });
    }
    // (FO, CQ) and (FP, CQ): undecidable — bounded semi-decision.
    {
        let budget_fp = SearchBudget {
            max_delta_tuples: 3,
            fresh_values: 2,
            max_candidates: 500_000,
            ..SearchBudget::default()
        };
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::ones());
        let (v, us) = timed(|| rcdp(&setting, &q, &db, &budget_fp).unwrap());
        rows.push(Row {
            cell: "(FP, CQ) DFA L nonempty",
            paper: "undecidable (Thm 3.1)",
            outcome: format!("{v} - witness encodes a word"),
            micros: us,
        });
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::empty_language());
        let (v, us) = timed(|| rcdp(&setting, &q, &db, &budget_fp).unwrap());
        rows.push(Row {
            cell: "(FP, CQ) DFA L empty",
            paper: "undecidable (Thm 3.1)",
            outcome: format!("{v}"),
            micros: us,
        });
    }
    rows
}

fn table2() -> Vec<Row> {
    let mut rows = Vec::new();
    let budget = SearchBudget::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);

    // (CQ, INDs): coNP-complete via 3SAT.
    {
        let mut agree = 0;
        let mut total_us = 0;
        let n = 4;
        for n_clauses in [3, 6, 10, 14] {
            let phi = sat::Cnf::random_3sat(3, n_clauses, &mut rng);
            let truth = !phi.satisfiable(); // RCQ nonempty iff unsat
            let (setting, q) = rcqp_conp::to_rcqp_instance(&phi);
            let (v, us) = timed(|| rcqp(&setting, &q, &budget).unwrap());
            total_us += us;
            if v.is_nonempty() == truth {
                agree += 1;
            }
        }
        rows.push(Row {
            cell: "(CQ, INDs) 3SAT reduction",
            paper: "coNP-complete (Thm 4.5)",
            outcome: format!("{agree}/{n} agree with DPLL oracle"),
            micros: total_us / n as u128,
        });
    }
    // (CQ, CQ): NEXPTIME-complete via tiling — witness verification is the
    // decidable half.
    {
        for n in [1u32, 2] {
            let inst = tiling::TilingInstance {
                n_tiles: 2,
                horiz: [(0, 1), (1, 0)].into_iter().collect(),
                vert: [(0, 1), (1, 0)].into_iter().collect(),
                t0: 0,
                n,
            };
            let (setting, q) = tiling::to_rcqp_instance(&inst);
            let grid = inst.solve().expect("checkerboard");
            let witness = tiling::tiling_witness(&setting.schema, &inst, &grid);
            let (v, us) = timed(|| rcdp(&setting, &q, &witness, &budget).unwrap());
            rows.push(Row {
                cell: if n == 1 {
                    "(CQ, CQ) tiling 2x2 witness"
                } else {
                    "(CQ, CQ) tiling 4x4 witness"
                },
                paper: "NEXPTIME-complete",
                outcome: format!("witness certified: {v}"),
                micros: us,
            });
        }
    }
    // (CQ, CQ) blocking/empty via the E2 machinery.
    {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1]);
        let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
        let setting =
            Setting::new(schema.clone(), Schema::new(), Database::with_relations(0), v);
        let bqt = SearchBudget { fresh_values: 3, ..SearchBudget::default() };
        let q4: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.").unwrap().into();
        let (verdict, us) = timed(|| rcqp(&setting, &q4, &bqt).unwrap());
        rows.push(Row {
            cell: "(CQ, CQ) blocking witness",
            paper: "NEXPTIME-complete",
            outcome: format!(
                "{} (Example 4.1: nonempty)",
                if verdict.is_nonempty() { "nonempty" } else { "UNEXPECTED" }
            ),
            micros: us,
        });
        let q2: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0').").unwrap().into();
        let (verdict, us) = timed(|| rcqp(&setting, &q2, &bqt).unwrap());
        rows.push(Row {
            cell: "(CQ, CQ) unbounded head",
            paper: "NEXPTIME-complete",
            outcome: format!(
                "{} (Example 4.1: empty)",
                if verdict.is_empty_verdict() { "empty" } else { "UNEXPECTED" }
            ),
            micros: us,
        });
    }
    // Fixed (D_m, V): Πᵖ₃ regime.
    {
        let setting = rcqp_pi3::fixed_setting();
        let bqt = SearchBudget { fresh_values: 3, ..SearchBudget::default() };
        let q = rcqp_pi3::bounded_query(&setting, 0);
        let (v, us) = timed(|| rcqp(&setting, &q, &bqt).unwrap());
        rows.push(Row {
            cell: "fixed (Dm,V), bounded query",
            paper: "Pi-p-3-complete (Cor 4.6)",
            outcome: if v.is_nonempty() { "nonempty".into() } else { "UNEXPECTED".into() },
            micros: us,
        });
        let q = rcqp_pi3::unbounded_query(&setting, 0);
        let (v, us) = timed(|| rcqp(&setting, &q, &bqt).unwrap());
        rows.push(Row {
            cell: "fixed (Dm,V), unbounded query",
            paper: "Pi-p-3-complete (Cor 4.6)",
            outcome: if v.is_empty_verdict() { "empty".into() } else { "UNEXPECTED".into() },
            micros: us,
        });
    }
    // (FP, …): undecidable — bounded evidence only.
    {
        let (setting, q, _) = to_rcdp_instance(&TwoHeadDfa::ones());
        let bqt = SearchBudget {
            max_delta_tuples: 2,
            fresh_values: 1,
            max_candidates: 50_000,
            ..SearchBudget::default()
        };
        let (v, us) = timed(|| rcqp(&setting, &q, &bqt).unwrap());
        rows.push(Row {
            cell: "(FP, CQ) DFA reduction",
            paper: "undecidable (Thm 4.1)",
            outcome: match v {
                QueryVerdict::Unknown { .. } => "unknown (honest)".into(),
                _ => "UNEXPECTED".into(),
            },
            micros: us,
        });
    }
    rows
}

fn main() {
    println!("Relative Information Completeness: empirical Tables I and II");
    println!("(Fan & Geerts, PODS 2009 / TODS 2010; see EXPERIMENTS.md)");
    let t1 = table1();
    print_table("Table I - RCDP(L_Q, L_C)", &t1);
    let t2 = table2();
    print_table("Table II - RCQP(L_Q, L_C)", &t2);
    println!();
}

//! Regenerate Tables I and II of the paper, empirically.
//!
//! For every cell of the complexity tables, run the corresponding decider on
//! generated instance families with a telemetry [`Collector`] attached,
//! validate the verdict against an independent ground-truth oracle where one
//! exists, and report the outcome, timing, and search counters. The *shape*
//! of the paper's results is what must reproduce: decidable cells decide
//! (and match the oracle), undecidable cells return certified witnesses or
//! an honest `Unknown`, and the hardness reductions blow up where the
//! bounds say they must.
//!
//! Beyond the human-readable tables on stdout, the run writes four
//! machine-readable artifacts to the current directory:
//!
//! * `BENCH_TABLE1.json` — one object per Table I (RCDP) cell;
//! * `BENCH_TABLE2.json` — one object per Table II (RCQP) cell;
//! * `BENCH_ENGINE.json` — the naive/indexed engine A/B comparison: every
//!   cell of a scaling suite of CQ/UCQ decisions timed under both engines,
//!   with the per-cell speedup and the median speedup at the largest size;
//! * `BENCH_PAR.json` — the indexed/parallel scaling suite: the same
//!   decisions timed under `Engine::Indexed` and `Engine::Parallel`, with
//!   per-cell speedups, verdict-identity checks, and the median speedup at
//!   the largest size;
//! * `BENCH_PLAN.json` — the plan A/B suite: the same scaling decisions
//!   timed under `Engine::Indexed` and `Engine::Planned` (cost-based
//!   compiled query plans), with per-cell speedups, verdict-identity
//!   checks, the median speedup at the largest size, and a prepared-reuse
//!   cell amortizing one `prepare()` over a batch of decisions;
//! * `BENCH_ANALYSIS.json` — the static-analysis A/B suite: FO-*syntax*
//!   queries that `ric::analyze` certifies down to CQ, decided through the
//!   naive FO-cell dispatch versus the analyzer-gated `try_rcdp_analyzed`
//!   dispatch, with per-cell speedups, verdict identity, and downgrade
//!   counts. Any Error-level diagnostic on a shipped workload aborts the
//!   run with a nonzero exit (the CI gate).
//!
//! Each cell object carries `cell`, `paper_bound`, `outcome`, an `oracle`
//! sub-object (`checked`, and `agrees` when a ground-truth oracle exists),
//! `micros`, and the full telemetry report (`counters` / `gauges` /
//! `spans_micros` / `notes`) of the decision. See EXPERIMENTS.md for the
//! schema.
//!
//! Run with `cargo run --release -p ric-bench --bin regen_tables`.
//!
//! Pass `--deadline-ms N` (or set `RIC_DEADLINE_MS=N`) to put a wall-clock
//! deadline of `N` milliseconds on every decision. Cells that cannot finish
//! inside the deadline degrade to an honest `Unknown` whose stats name the
//! `deadline` limit — the regeneration still terminates and still writes
//! well-formed artifacts, which is the point: the tables can be rebuilt on a
//! time budget without ever reporting a wrong cell.
//!
//! Pass `--engine naive|indexed|parallel|planned` to pick the evaluation
//! engine used for the Table I/II cells (default `indexed`; every engine is
//! exact, so the verdicts must not differ). The A/B suite behind
//! `BENCH_ENGINE.json` always runs both sequential engines regardless of the
//! flag, and the plan suite behind `BENCH_PLAN.json` always runs indexed
//! versus planned: the same scaling decisions timed under both, with
//! per-cell verdict-identity checks, the median speedup at the largest
//! size, and a prepared-reuse cell that amortizes one [`ric::prepare`] call
//! over a batch of decisions.
//!
//! Pass `--workers N` to size the worker pool of the parallel engine
//! (default 4). The parallel scaling suite behind `BENCH_PAR.json` times the
//! same decision under `Engine::Indexed` and `Engine::Parallel` at growing
//! instance sizes and reports the per-cell and median wall-clock speedups;
//! the two engines must return identical verdicts (the scheduler's
//! deterministic-merge guarantee), and the artifact records that too.

use std::time::Duration;

use ric::prelude::*;
use ric::query::{Atom as QueryAtom, FoExpr, FoQuery};
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric::reductions::workload::{planted_rcdp, WorkloadParams};
use ric::reductions::{qbf, rcdp_sigma2, rcqp_conp, rcqp_pi3, sat, tiling};
use ric::telemetry::Json;
use ric::{rcdp_probed, rcqp_probed, SplitMix64};
use std::time::Instant;

struct Cell {
    cell: &'static str,
    paper: &'static str,
    outcome: String,
    /// `Some(agrees)` when an independent ground-truth oracle exists for the
    /// cell, `None` when the expectation is structural only.
    oracle: Option<bool>,
    micros: u128,
    report: Report,
}

impl Cell {
    fn to_json(&self) -> Json {
        let oracle = match self.oracle {
            Some(agrees) => Json::obj([
                ("checked", Json::from(true)),
                ("agrees", Json::from(agrees)),
            ]),
            None => Json::obj([("checked", Json::from(false))]),
        };
        Json::obj([
            ("cell", Json::from(self.cell)),
            ("paper_bound", Json::from(self.paper)),
            ("outcome", Json::from(self.outcome.as_str())),
            ("oracle", oracle),
            ("micros", Json::from(self.micros)),
            ("telemetry", self.report.to_json()),
        ])
    }
}

fn print_table(title: &str, cells: &[Cell]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "{:<34} {:<24} {:<46} {:>12}",
        "(L_Q, L_C)", "paper bound", "measured outcome", "time"
    );
    println!("{}", "-".repeat(120));
    for c in cells {
        println!(
            "{:<34} {:<24} {:<46} {:>9} µs",
            c.cell, c.paper, c.outcome, c.micros
        );
    }
}

fn write_table(path: &str, table: &str, title: &str, cells: &[Cell], meta: &Json) {
    let doc = Json::obj([
        ("table", Json::from(table)),
        ("title", Json::from(title)),
        ("source", Json::from("regen_tables")),
        ("meta", meta.clone()),
        ("cells", Json::arr(cells.iter().map(Cell::to_json))),
    ]);
    match std::fs::write(path, format!("{}\n", doc.pretty())) {
        Ok(()) => println!("wrote {path} ({} cells)", cells.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Run `f` with a fresh collector attached; returns the result, the wall
/// time, and the aggregated telemetry of everything `f` probed.
fn probed<T>(f: impl FnOnce(Probe<'_>) -> T) -> (T, u128, Report) {
    let collector = Collector::new();
    let start = Instant::now();
    let out = f(Probe::attached(&collector));
    (out, start.elapsed().as_micros(), collector.report())
}

/// The run-wide knobs requested on the command line (or the environment).
struct Invocation {
    /// Per-decision wall-clock deadline, if any.
    deadline: Option<Duration>,
    /// Engine used for the Table I/II cells. The A/B suite ignores this and
    /// always runs both.
    engine: Engine,
    /// Worker-pool size for the parallel engine and the scaling suite.
    workers: usize,
    /// Stream a JSONL decision trace of representative decisions to this
    /// path (`--trace FILE`), for `ric-trace` to render offline.
    trace: Option<String>,
}

/// Parse the invocation. Invalid values are rejected loudly rather than
/// silently ignored.
fn parse_invocation() -> Invocation {
    let mut args = std::env::args().skip(1);
    let mut ms: Option<String> = None;
    let mut engine_arg: Option<String> = None;
    let mut workers_arg: Option<String> = None;
    let mut trace: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--deadline-ms" {
            ms = Some(args.next().unwrap_or_default());
        } else if let Some(v) = arg.strip_prefix("--deadline-ms=") {
            ms = Some(v.to_string());
        } else if arg == "--engine" {
            engine_arg = Some(args.next().unwrap_or_default());
        } else if let Some(v) = arg.strip_prefix("--engine=") {
            engine_arg = Some(v.to_string());
        } else if arg == "--workers" {
            workers_arg = Some(args.next().unwrap_or_default());
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            workers_arg = Some(v.to_string());
        } else if arg == "--trace" {
            trace = Some(args.next().unwrap_or_default());
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            trace = Some(v.to_string());
        } else {
            eprintln!(
                "usage: regen_tables [--deadline-ms N] \
                 [--engine naive|indexed|parallel|planned] [--workers N] [--trace FILE]"
            );
            std::process::exit(2);
        }
    }
    if trace.as_deref() == Some("") {
        eprintln!("regen_tables: --trace expects an output path");
        std::process::exit(2);
    }
    let workers = match workers_arg.as_deref().map(str::parse::<usize>) {
        None => 4,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("regen_tables: --workers expects a positive worker count");
            std::process::exit(2);
        }
    };
    let engine = match engine_arg.as_deref() {
        None | Some("indexed") => Engine::Indexed,
        Some("naive") => Engine::Naive,
        Some("parallel") => Engine::parallel(workers),
        Some("planned") => Engine::planned(workers),
        Some(other) => {
            eprintln!(
                "regen_tables: --engine expects `naive`, `indexed`, `parallel`, \
                 or `planned`, got {other:?}"
            );
            std::process::exit(2);
        }
    };
    let deadline = ms
        .or_else(|| std::env::var("RIC_DEADLINE_MS").ok())
        .map(|ms| match ms.parse::<u64>() {
            Ok(n) => Duration::from_millis(n),
            Err(_) => {
                eprintln!("regen_tables: --deadline-ms expects a millisecond count, got {ms:?}");
                std::process::exit(2);
            }
        });
    Invocation {
        deadline,
        engine,
        workers,
        trace,
    }
}

/// Version of the artifact layout. Bump when a key is renamed or removed;
/// additions are backwards-compatible and do not bump it.
const ARTIFACT_SCHEMA_VERSION: u64 = 1;

/// The provenance block stamped into every `BENCH_*.json` artifact: how the
/// run was invoked and which tree produced it, so two artifacts can be
/// compared (`ric-trace diff`) without guessing at their origins. `git`
/// degrades to `"unknown"` outside a checkout.
fn meta_json(inv: &Invocation) -> Json {
    let git = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|describe| !describe.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    Json::obj([
        ("schema_version", Json::from(ARTIFACT_SCHEMA_VERSION)),
        ("engine", Json::from(inv.engine.to_string())),
        ("workers", Json::from(inv.workers)),
        (
            "deadline_ms",
            match inv.deadline {
                Some(d) => Json::from(d.as_millis()),
                None => Json::Null,
            },
        ),
        ("git", Json::from(git)),
    ])
}

/// Apply the run-wide deadline and engine choice to a cell's budget.
fn bounded(budget: SearchBudget, inv: &Invocation) -> SearchBudget {
    let budget = budget.with_engine(inv.engine);
    match inv.deadline {
        Some(d) => budget.with_deadline(d),
        None => budget,
    }
}

fn table1(inv: &Invocation) -> Vec<Cell> {
    let mut cells = Vec::new();
    let budget = bounded(SearchBudget::default(), inv);
    let mut rng = SplitMix64::seed_from_u64(1);

    // (CQ, INDs): Σᵖ₂-complete — typical workload + hardness reduction.
    {
        let params = WorkloadParams {
            n_customers: 25,
            n_employees: 4,
            n_support: 50,
        };
        let inst = planted_rcdp(&params, false, &mut rng);
        let (v, us, report) =
            probed(|p| rcdp_probed(&inst.setting, &inst.query, &inst.db, &budget, p).unwrap());
        cells.push(Cell {
            cell: "(CQ, INDs) workload",
            paper: "Sigma-p-2-complete",
            outcome: format!("{v} (planted: incomplete)"),
            oracle: Some(v.is_incomplete()),
            micros: us,
            report,
        });
    }
    {
        let mut agree = 0;
        let mut total_us = 0;
        let n = 4;
        let collector = Collector::new();
        for _ in 0..n {
            let phi = qbf::ForallExists::random(2, 2, 3, &mut rng);
            let truth = phi.eval();
            let (setting, q, db) = rcdp_sigma2::to_rcdp_instance(&phi);
            let start = Instant::now();
            let v = rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&collector)).unwrap();
            total_us += start.elapsed().as_micros();
            if v.is_complete() == truth {
                agree += 1;
            }
        }
        cells.push(Cell {
            cell: "(CQ, INDs) forall-exists-3SAT",
            paper: "Sigma-p-2-hard (Thm 3.6)",
            outcome: format!("{agree}/{n} agree with QBF oracle"),
            oracle: Some(agree == n),
            micros: total_us / n as u128,
            report: collector.report(),
        });
    }
    // (CQ, CQ) / (UCQ, UCQ): same decider, CQ constraints (FD-compiled).
    {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1, 2]);
        let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        let mut db = Database::empty(&schema);
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str("d0"), Value::str("c0")]),
        );
        let (verdict, us, report) = probed(|p| rcdp_probed(&setting, &q, &db, &budget, p).unwrap());
        cells.push(Cell {
            cell: "(CQ, CQ) FD-blocked",
            paper: "Sigma-p-2-complete",
            outcome: format!("{verdict} (Example 3.1: complete)"),
            oracle: Some(verdict.is_complete()),
            micros: us,
            report,
        });
        let u: Query = parse_ucq(
            &schema,
            "Q(E, C) :- Supt(E, D, C), E = 'e0'. Q(E, C) :- Supt(E, D, C), E = 'e1'.",
        )
        .unwrap()
        .into();
        let (verdict, us, report) = probed(|p| rcdp_probed(&setting, &u, &db, &budget, p).unwrap());
        cells.push(Cell {
            cell: "(UCQ, UCQ) per-disjunct",
            paper: "Sigma-p-2-complete",
            outcome: format!("{verdict}"),
            oracle: None,
            micros: us,
            report,
        });
    }
    // (FO, CQ) and (FP, CQ): undecidable — bounded semi-decision.
    {
        let budget_fp = bounded(
            SearchBudget {
                max_delta_tuples: 3,
                fresh_values: 2,
                max_candidates: 500_000,
                ..SearchBudget::default()
            },
            inv,
        );
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::ones());
        let (v, us, report) = probed(|p| rcdp_probed(&setting, &q, &db, &budget_fp, p).unwrap());
        cells.push(Cell {
            cell: "(FP, CQ) DFA L nonempty",
            paper: "undecidable (Thm 3.1)",
            outcome: format!("{v} - witness encodes a word"),
            oracle: Some(v.is_incomplete()),
            micros: us,
            report,
        });
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::empty_language());
        let (v, us, report) = probed(|p| rcdp_probed(&setting, &q, &db, &budget_fp, p).unwrap());
        cells.push(Cell {
            cell: "(FP, CQ) DFA L empty",
            paper: "undecidable (Thm 3.1)",
            outcome: format!("{v}"),
            oracle: None,
            micros: us,
            report,
        });
    }
    cells
}

fn table2(inv: &Invocation) -> Vec<Cell> {
    let mut cells = Vec::new();
    let budget = bounded(SearchBudget::default(), inv);
    let mut rng = SplitMix64::seed_from_u64(2);

    // (CQ, INDs): coNP-complete via 3SAT.
    {
        let mut agree = 0;
        let mut total_us = 0;
        let n = 4;
        let collector = Collector::new();
        for n_clauses in [3, 6, 10, 14] {
            let phi = sat::Cnf::random_3sat(3, n_clauses, &mut rng);
            let truth = !phi.satisfiable(); // RCQ nonempty iff unsat
            let (setting, q) = rcqp_conp::to_rcqp_instance(&phi);
            let start = Instant::now();
            let v = rcqp_probed(&setting, &q, &budget, Probe::attached(&collector)).unwrap();
            total_us += start.elapsed().as_micros();
            if v.is_nonempty() == truth {
                agree += 1;
            }
        }
        cells.push(Cell {
            cell: "(CQ, INDs) 3SAT reduction",
            paper: "coNP-complete (Thm 4.5)",
            outcome: format!("{agree}/{n} agree with DPLL oracle"),
            oracle: Some(agree == n),
            micros: total_us / n as u128,
            report: collector.report(),
        });
    }
    // (CQ, CQ): NEXPTIME-complete via tiling — witness verification is the
    // decidable half.
    {
        for n in [1u32, 2] {
            let inst = tiling::TilingInstance {
                n_tiles: 2,
                horiz: [(0, 1), (1, 0)].into_iter().collect(),
                vert: [(0, 1), (1, 0)].into_iter().collect(),
                t0: 0,
                n,
            };
            let (setting, q) = tiling::to_rcqp_instance(&inst);
            let grid = inst.solve().expect("checkerboard");
            let witness = tiling::tiling_witness(&setting.schema, &inst, &grid);
            let (v, us, report) =
                probed(|p| rcdp_probed(&setting, &q, &witness, &budget, p).unwrap());
            cells.push(Cell {
                cell: if n == 1 {
                    "(CQ, CQ) tiling 2x2 witness"
                } else {
                    "(CQ, CQ) tiling 4x4 witness"
                },
                paper: "NEXPTIME-complete",
                outcome: format!("witness certified: {v}"),
                oracle: Some(v.is_complete()),
                micros: us,
                report,
            });
        }
    }
    // (CQ, CQ) blocking/empty via the E2 machinery.
    {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = Fd::new(supt, vec![0], vec![1]);
        let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let bqt = bounded(
            SearchBudget {
                fresh_values: 3,
                ..SearchBudget::default()
            },
            inv,
        );
        let q4: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.")
            .unwrap()
            .into();
        let (verdict, us, report) = probed(|p| rcqp_probed(&setting, &q4, &bqt, p).unwrap());
        cells.push(Cell {
            cell: "(CQ, CQ) blocking witness",
            paper: "NEXPTIME-complete",
            outcome: format!(
                "{} (Example 4.1: nonempty)",
                if verdict.is_nonempty() {
                    "nonempty"
                } else {
                    "UNEXPECTED"
                }
            ),
            oracle: Some(verdict.is_nonempty()),
            micros: us,
            report,
        });
        let q2: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0').").unwrap().into();
        let (verdict, us, report) = probed(|p| rcqp_probed(&setting, &q2, &bqt, p).unwrap());
        cells.push(Cell {
            cell: "(CQ, CQ) unbounded head",
            paper: "NEXPTIME-complete",
            outcome: format!(
                "{} (Example 4.1: empty)",
                if verdict.is_empty_verdict() {
                    "empty"
                } else {
                    "UNEXPECTED"
                }
            ),
            oracle: Some(verdict.is_empty_verdict()),
            micros: us,
            report,
        });
    }
    // Fixed (D_m, V): Πᵖ₃ regime.
    {
        let setting = rcqp_pi3::fixed_setting();
        let bqt = bounded(
            SearchBudget {
                fresh_values: 3,
                ..SearchBudget::default()
            },
            inv,
        );
        let q = rcqp_pi3::bounded_query(&setting, 0);
        let (v, us, report) = probed(|p| rcqp_probed(&setting, &q, &bqt, p).unwrap());
        cells.push(Cell {
            cell: "fixed (Dm,V), bounded query",
            paper: "Pi-p-3-complete (Cor 4.6)",
            outcome: if v.is_nonempty() {
                "nonempty".into()
            } else {
                "UNEXPECTED".into()
            },
            oracle: Some(v.is_nonempty()),
            micros: us,
            report,
        });
        let q = rcqp_pi3::unbounded_query(&setting, 0);
        let (v, us, report) = probed(|p| rcqp_probed(&setting, &q, &bqt, p).unwrap());
        cells.push(Cell {
            cell: "fixed (Dm,V), unbounded query",
            paper: "Pi-p-3-complete (Cor 4.6)",
            outcome: if v.is_empty_verdict() {
                "empty".into()
            } else {
                "UNEXPECTED".into()
            },
            oracle: Some(v.is_empty_verdict()),
            micros: us,
            report,
        });
    }
    // (FP, …): undecidable — bounded evidence only. The telemetry notes for
    // this cell name the exhausted budget limit (`rcqp.limit`).
    {
        let (setting, q, _) = to_rcdp_instance(&TwoHeadDfa::ones());
        let bqt = bounded(
            SearchBudget {
                max_delta_tuples: 2,
                fresh_values: 1,
                max_candidates: 50_000,
                ..SearchBudget::default()
            },
            inv,
        );
        let (v, us, report) = probed(|p| rcqp_probed(&setting, &q, &bqt, p).unwrap());
        cells.push(Cell {
            cell: "(FP, CQ) DFA reduction",
            paper: "undecidable (Thm 4.1)",
            outcome: match &v {
                QueryVerdict::Unknown { stats } => {
                    format!("unknown (honest; limit: {})", stats.limit)
                }
                _ => "UNEXPECTED".into(),
            },
            oracle: Some(matches!(v, QueryVerdict::Unknown { .. })),
            micros: us,
            report,
        });
    }
    cells
}

/// One cell of the engine A/B suite: the same decision timed under the
/// naive and the indexed engine.
struct EngineCell {
    cell: String,
    /// Instance-size parameter of the scaling family this cell belongs to.
    size: usize,
    /// Whether `size` is the largest in its family (these cells feed the
    /// median-speedup headline number).
    largest: bool,
    naive_us: u128,
    indexed_us: u128,
    /// Both engines are exact, so the verdicts must agree; recorded so a
    /// regression shows up in the artifact, not just in the test suite.
    agree: bool,
}

impl EngineCell {
    fn speedup(&self) -> f64 {
        self.naive_us as f64 / self.indexed_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("size", Json::from(self.size)),
            ("largest_size", Json::from(self.largest)),
            ("naive_micros", Json::from(self.naive_us)),
            ("indexed_micros", Json::from(self.indexed_us)),
            ("speedup", Json::from(self.speedup())),
            ("verdicts_agree", Json::from(self.agree)),
        ])
    }
}

/// Time one RCDP decision under both engines. Returns the naive and indexed
/// wall times plus whether the verdicts agree (same variant — witness deltas
/// may legitimately differ between enumeration orders).
fn ab_rcdp(
    setting: &Setting,
    query: &Query,
    db: &Database,
    inv: &Invocation,
) -> (u128, u128, bool) {
    let run = |engine: Engine| {
        // `bounded` pins the table-cell engine; the A/B arms override it.
        let budget = bounded(SearchBudget::default(), inv).with_engine(engine);
        let start = Instant::now();
        let v = rcdp(setting, query, db, &budget).expect("A/B instances are well-formed");
        (start.elapsed().as_micros(), v)
    };
    let (naive_us, vn) = run(Engine::Naive);
    let (indexed_us, vi) = run(Engine::Indexed);
    (
        naive_us,
        indexed_us,
        std::mem::discriminant(&vn) == std::mem::discriminant(&vi),
    )
}

/// The FD-constrained Example 3.1 setting at size `n`: `Supt(eid, dept,
/// cid)` under the FD `eid → dept, cid` (compiled to CQ-bodied CCs), with
/// one tuple per employee so the FD pins every employee's row.
fn fd_instance(n: usize) -> (Setting, Database) {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .expect("fixed schema");
    let supt = schema.rel_id("Supt").unwrap();
    let fd = Fd::new(supt, vec![0], vec![1, 2]);
    let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let mut db = Database::empty(&schema);
    for i in 0..n {
        db.insert(
            supt,
            Tuple::new([
                Value::str(format!("e{i}")),
                Value::str(format!("d{i}")),
                Value::str(format!("c{i}")),
            ]),
        );
    }
    (setting, db)
}

/// The engine A/B suite: CQ and UCQ decisions over the Example 3.1 FD
/// setting at growing instance sizes. CQ-bodied constraints are where the
/// engines genuinely diverge — pure IND sets take the C3 shortcut (check `Δ`
/// alone) in *both* engines, so there is nothing to compare there. Every
/// database is *complete* by construction (the FD pins each employee's
/// single row), so both engines must exhaust the full Σᵖ₂ candidate space —
/// the timing measures the engines, not an early counterexample exit.
fn engine_suite(inv: &Invocation) -> Vec<EngineCell> {
    let mut cells = Vec::new();
    let sizes = [8usize, 20, 48];
    let largest = *sizes.last().unwrap();

    // (CQ, CQ): per candidate, the naive arm materializes D ∪ Δ and
    // re-evaluates every FD-join body over it; the delta arm overlays Δ and
    // joins the novel tuples through the column indexes.
    for &n in &sizes {
        let (setting, db) = fd_instance(n);
        let query: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
            .expect("fixed query")
            .into();
        let (naive_us, indexed_us, agree) = ab_rcdp(&setting, &query, &db, inv);
        cells.push(EngineCell {
            cell: format!("(CQ, CQ) FD-pinned n={n}"),
            size: n,
            largest: n == largest,
            naive_us,
            indexed_us,
            agree,
        });
    }

    // (UCQ, CQ): two-disjunct query over the same setting; both disjuncts
    // are FD-pinned, so the per-disjunct enumeration runs to exhaustion.
    for &n in &sizes {
        let (setting, db) = fd_instance(n);
        let query: Query = parse_ucq(
            &setting.schema,
            "Q(C) :- Supt('e0', D, C). Q(C) :- Supt('e1', D, C).",
        )
        .expect("fixed query")
        .into();
        let (naive_us, indexed_us, agree) = ab_rcdp(&setting, &query, &db, inv);
        cells.push(EngineCell {
            cell: format!("(UCQ, CQ) FD-pinned two-disjunct n={n}"),
            size: n,
            largest: n == largest,
            naive_us,
            indexed_us,
            agree,
        });
    }
    cells
}

/// Median of the per-cell speedups at the largest instance size.
fn median_speedup_at_largest(cells: &[EngineCell]) -> f64 {
    median(
        cells
            .iter()
            .filter(|c| c.largest)
            .map(EngineCell::speedup)
            .collect(),
    )
}

fn median(mut s: Vec<f64>) -> f64 {
    s.sort_by(|a, b| a.total_cmp(b));
    match s.len() {
        0 => 0.0,
        n if n % 2 == 1 => s[n / 2],
        n => (s[n / 2 - 1] + s[n / 2]) / 2.0,
    }
}

/// One cell of the parallel scaling suite: the same decision timed under the
/// indexed engine and the parallel engine at `workers` workers.
struct ParCell {
    cell: String,
    size: usize,
    /// Whether `size` is the largest in its family (these cells feed the
    /// median-speedup headline number).
    largest: bool,
    indexed_us: u128,
    parallel_us: u128,
    /// The scheduler's deterministic merge makes parallel verdicts
    /// *bit-identical* to the indexed ones — counterexamples included —
    /// so this records full equality, not just variant agreement.
    identical: bool,
}

impl ParCell {
    fn speedup(&self) -> f64 {
        self.indexed_us as f64 / self.parallel_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("size", Json::from(self.size)),
            ("largest_size", Json::from(self.largest)),
            ("indexed_micros", Json::from(self.indexed_us)),
            ("parallel_micros", Json::from(self.parallel_us)),
            ("speedup", Json::from(self.speedup())),
            ("verdicts_identical", Json::from(self.identical)),
        ])
    }
}

/// The parallel scaling suite: the engine A/B instance families at larger
/// sizes, timed under `Engine::Indexed` versus `Engine::Parallel`. The
/// instances are complete by construction, so both engines sweep the whole
/// valuation space — exactly the regime the chunked fan-out is built for.
fn par_suite(inv: &Invocation) -> Vec<ParCell> {
    let mut cells = Vec::new();
    let sizes = [20usize, 48, 96];
    let largest = *sizes.last().unwrap();
    let queries: [(&str, &str); 2] = [
        ("(CQ, CQ) FD-pinned", "Q(C) :- Supt('e0', D, C)."),
        (
            "(UCQ, CQ) FD-pinned two-disjunct",
            "Q(C) :- Supt('e0', D, C). Q(C) :- Supt('e1', D, C).",
        ),
    ];
    for (name, src) in queries {
        for &n in &sizes {
            let (setting, db) = fd_instance(n);
            let query: Query = if src.matches(":-").count() > 1 {
                parse_ucq(&setting.schema, src).expect("fixed query").into()
            } else {
                parse_cq(&setting.schema, src).expect("fixed query").into()
            };
            let run = |engine: Engine| {
                let budget = bounded(SearchBudget::default(), inv).with_engine(engine);
                let start = Instant::now();
                let v = rcdp(&setting, &query, &db, &budget).expect("well-formed instance");
                (start.elapsed().as_micros(), v)
            };
            let (indexed_us, vi) = run(Engine::Indexed);
            let (parallel_us, vp) = run(Engine::parallel(inv.workers));
            cells.push(ParCell {
                cell: format!("{name} n={n}"),
                size: n,
                largest: n == largest,
                indexed_us,
                parallel_us,
                identical: vi == vp,
            });
        }
    }
    cells
}

fn print_par_suite(cells: &[ParCell], workers: usize, median: f64) {
    println!("\nParallel scaling - indexed vs parallel({workers})");
    println!("==========================================");
    println!(
        "{:<42} {:>12} {:>12} {:>9} {:>10}",
        "cell", "indexed", "parallel", "speedup", "identical"
    );
    println!("{}", "-".repeat(90));
    for c in cells {
        println!(
            "{:<42} {:>9} µs {:>9} µs {:>8.1}x {:>10}",
            c.cell,
            c.indexed_us,
            c.parallel_us,
            c.speedup(),
            c.identical
        );
    }
    println!("median speedup at largest size: {median:.1}x");
}

fn write_par_suite(path: &str, cells: &[ParCell], workers: usize, median: f64, meta: &Json) {
    let doc = Json::obj([
        ("source", Json::from("regen_tables")),
        ("meta", meta.clone()),
        (
            "engines",
            Json::arr(["indexed", "parallel"].map(Json::from)),
        ),
        ("workers", Json::from(workers)),
        ("cells", Json::arr(cells.iter().map(ParCell::to_json))),
        ("median_speedup_at_largest", Json::from(median)),
    ]);
    match std::fs::write(path, format!("{}\n", doc.pretty())) {
        Ok(()) => println!("wrote {path} ({} cells)", cells.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// One cell of the plan A/B suite: the same decision timed under the indexed
/// engine and the planned (cost-based compiled plans) engine.
struct PlanCell {
    cell: String,
    size: usize,
    /// Whether `size` is the largest in its family (these cells feed the
    /// median-speedup headline number).
    largest: bool,
    indexed_us: u128,
    planned_us: u128,
    /// Plans fix join orders only, so planned verdicts are *bit-identical*
    /// to the indexed ones — counterexamples included.
    identical: bool,
}

impl PlanCell {
    fn speedup(&self) -> f64 {
        self.indexed_us as f64 / self.planned_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("size", Json::from(self.size)),
            ("largest_size", Json::from(self.largest)),
            ("indexed_micros", Json::from(self.indexed_us)),
            ("planned_micros", Json::from(self.planned_us)),
            ("speedup", Json::from(self.speedup())),
            ("verdicts_identical", Json::from(self.identical)),
        ])
    }
}

/// The prepared-reuse cell: one [`ric::prepare`] amortized over a batch of
/// decisions, versus preparing from scratch inside every decision.
struct ReuseCell {
    cell: String,
    decisions: usize,
    fresh_us: u128,
    prepared_us: u128,
    identical: bool,
}

impl ReuseCell {
    fn speedup(&self) -> f64 {
        self.fresh_us as f64 / self.prepared_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("decisions", Json::from(self.decisions)),
            ("fresh_micros", Json::from(self.fresh_us)),
            ("prepared_micros", Json::from(self.prepared_us)),
            ("speedup", Json::from(self.speedup())),
            ("verdicts_identical", Json::from(self.identical)),
        ])
    }
}

/// The plan A/B suite: the largest Table I cell family (the FD-pinned
/// Example 3.1 instances, whose CQ-bodied constraints are where the delta
/// check dominates) timed under `Engine::Indexed` versus `Engine::Planned`.
/// The instances are complete by construction, so both engines sweep the
/// whole valuation space; the planned arm's compiled plans with reusable
/// scratch buffers are what the speedup measures.
fn plan_suite(inv: &Invocation) -> (Vec<PlanCell>, ReuseCell) {
    let mut cells = Vec::new();
    let sizes = [20usize, 48, 96];
    let largest = *sizes.last().unwrap();
    let queries: [(&str, &str); 2] = [
        ("(CQ, CQ) FD-pinned", "Q(C) :- Supt('e0', D, C)."),
        (
            "(UCQ, CQ) FD-pinned two-disjunct",
            "Q(C) :- Supt('e0', D, C). Q(C) :- Supt('e1', D, C).",
        ),
    ];
    for (name, src) in queries {
        for &n in &sizes {
            let (setting, db) = fd_instance(n);
            let query: Query = if src.matches(":-").count() > 1 {
                parse_ucq(&setting.schema, src).expect("fixed query").into()
            } else {
                parse_cq(&setting.schema, src).expect("fixed query").into()
            };
            let run = |engine: Engine| {
                let budget = bounded(SearchBudget::default(), inv).with_engine(engine);
                let start = Instant::now();
                let v = rcdp(&setting, &query, &db, &budget).expect("well-formed instance");
                (start.elapsed().as_micros(), v)
            };
            let (indexed_us, vi) = run(Engine::Indexed);
            let (planned_us, vp) = run(Engine::planned(1));
            cells.push(PlanCell {
                cell: format!("{name} n={n}"),
                size: n,
                largest: n == largest,
                indexed_us,
                planned_us,
                identical: vi == vp,
            });
        }
    }

    // Prepared reuse: the same planned decision repeated over a batch, once
    // preparing from scratch every time and once against one shared
    // `PreparedSetting`. Small instances are the regime preparation is for:
    // there the per-decision compile (tableau normalization, rhs
    // evaluation, planning) is a visible fraction of the decision.
    let decisions = 200usize;
    let reuse_n = 8usize;
    let (setting, db) = fd_instance(reuse_n);
    let query: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
        .expect("fixed query")
        .into();
    let budget = bounded(SearchBudget::default(), inv).with_engine(Engine::planned(1));

    // One-time preparation cost counts against the prepared arm. The arms
    // interleave decision-by-decision so clock-frequency drift over the
    // batch cannot bias either side, and both use unprobed, unisolated
    // entry points — the timing isolates the preparation reuse itself.
    let start = Instant::now();
    let prepared =
        ric::prepare(&setting, &db, Engine::planned(1)).expect("well-formed preparation");
    let mut prepared_us = start.elapsed().as_micros();
    let mut fresh_us = 0u128;
    let mut fresh_verdicts = Vec::new();
    let mut prepared_verdicts = Vec::new();
    for _ in 0..decisions {
        let start = Instant::now();
        fresh_verdicts.push(rcdp(&setting, &query, &db, &budget).expect("well-formed instance"));
        fresh_us += start.elapsed().as_micros();
        let start = Instant::now();
        prepared_verdicts.push(
            prepared
                .rcdp(&query, &db, &budget)
                .expect("well-formed instance"),
        );
        prepared_us += start.elapsed().as_micros();
    }

    let reuse = ReuseCell {
        cell: format!("(CQ, CQ) FD-pinned n={reuse_n} prepared-reuse"),
        decisions,
        fresh_us,
        prepared_us,
        identical: fresh_verdicts == prepared_verdicts,
    };
    (cells, reuse)
}

fn print_plan_suite(cells: &[PlanCell], reuse: &ReuseCell, median: f64) {
    println!("\nPlan A/B - indexed vs planned");
    println!("=============================");
    println!(
        "{:<42} {:>12} {:>12} {:>9} {:>10}",
        "cell", "indexed", "planned", "speedup", "identical"
    );
    println!("{}", "-".repeat(90));
    for c in cells {
        println!(
            "{:<42} {:>9} µs {:>9} µs {:>8.1}x {:>10}",
            c.cell,
            c.indexed_us,
            c.planned_us,
            c.speedup(),
            c.identical
        );
    }
    println!(
        "{:<42} {:>9} µs {:>9} µs {:>8.1}x {:>10}   ({} decisions)",
        reuse.cell,
        reuse.fresh_us,
        reuse.prepared_us,
        reuse.speedup(),
        reuse.identical,
        reuse.decisions
    );
    println!("median speedup at largest size: {median:.1}x");
}

fn write_plan_suite(path: &str, cells: &[PlanCell], reuse: &ReuseCell, median: f64, meta: &Json) {
    let doc = Json::obj([
        ("source", Json::from("regen_tables")),
        ("meta", meta.clone()),
        ("engines", Json::arr(["indexed", "planned"].map(Json::from))),
        ("cells", Json::arr(cells.iter().map(PlanCell::to_json))),
        ("prepared_reuse", reuse.to_json()),
        ("median_speedup_at_largest", Json::from(median)),
    ]);
    match std::fs::write(path, format!("{}\n", doc.pretty())) {
        Ok(()) => println!("wrote {path} ({} cells + prepared-reuse)", cells.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn print_engine_suite(cells: &[EngineCell], median: f64) {
    println!("\nEngine A/B - naive vs indexed");
    println!("=============================");
    println!(
        "{:<42} {:>12} {:>12} {:>9} {:>7}",
        "cell", "naive", "indexed", "speedup", "agree"
    );
    println!("{}", "-".repeat(88));
    for c in cells {
        println!(
            "{:<42} {:>9} µs {:>9} µs {:>8.1}x {:>7}",
            c.cell,
            c.naive_us,
            c.indexed_us,
            c.speedup(),
            c.agree
        );
    }
    println!("median speedup at largest size: {median:.1}x");
}

fn write_engine_suite(path: &str, cells: &[EngineCell], median: f64, meta: &Json) {
    let doc = Json::obj([
        ("source", Json::from("regen_tables")),
        ("meta", meta.clone()),
        ("engines", Json::arr(["naive", "indexed"].map(Json::from))),
        ("cells", Json::arr(cells.iter().map(EngineCell::to_json))),
        ("median_speedup_at_largest", Json::from(median)),
    ]);
    match std::fs::write(path, format!("{}\n", doc.pretty())) {
        Ok(()) => println!("wrote {path} ({} cells)", cells.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// One cell of the analysis A/B suite: an FO-*syntax* query that the static
/// analyzer certifies down to CQ, decided once through the naive FO-cell
/// dispatch and once through the analysis gate.
struct AnalysisCell {
    cell: String,
    size: usize,
    /// Whether `size` is the largest in its family (these cells feed the
    /// median-speedup headline number).
    largest: bool,
    fo_us: u128,
    analyzed_us: u128,
    /// Verdict identity: both dispatches must return the same verdict
    /// variant (the instances are incomplete by construction, so both sides
    /// land on `Incomplete`, which the FO semi-decision can certify).
    agree: bool,
    /// `analysis.downgrade` counter emitted by the gate.
    downgrades: u64,
}

impl AnalysisCell {
    fn speedup(&self) -> f64 {
        self.fo_us as f64 / self.analyzed_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("size", Json::from(self.size)),
            ("largest_size", Json::from(self.largest)),
            ("fo_micros", Json::from(self.fo_us)),
            ("analyzed_micros", Json::from(self.analyzed_us)),
            ("speedup", Json::from(self.speedup())),
            ("verdicts_agree", Json::from(self.agree)),
            ("downgrades", Json::from(self.downgrades)),
        ])
    }
}

/// The analysis A/B instance at master size `n`: `Supt(eid, cid)` bounded by
/// the `DCust` master list, `Pref` unconstrained, and an FO-written query
/// `Q(c) := exists e (Supt(e, c) and not not Pref(c))` that is semantically
/// the CQ `Q(C) :- Supt(E, C), Pref(C).`. The database supports every master
/// customer but the last, so the instance is *incomplete* by construction —
/// a ground truth both the FO semi-decision and the CQ cell can certify.
fn analysis_instance(n: usize) -> (Setting, Query, Database) {
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "cid"]),
        RelationSchema::infinite("Pref", &["cid"]),
    ])
    .expect("fixed schema");
    let supt = schema.rel_id("Supt").unwrap();
    let pref = schema.rel_id("Pref").unwrap();
    let master = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])])
        .expect("fixed master schema");
    let dcust = master.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&master);
    for c in 0..n {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), master, dm, v);

    let mut db = Database::empty(&schema);
    for c in 0..n {
        db.insert(pref, Tuple::new([Value::str(format!("c{c}"))]));
    }
    for c in 0..n.saturating_sub(1) {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str(format!("c{c}"))]),
        );
    }

    let (c, e) = (Var(0), Var(1));
    let fo = FoQuery::new(
        vec![c],
        FoExpr::Exists(
            vec![e],
            Box::new(FoExpr::And(vec![
                FoExpr::Atom(QueryAtom::new(supt, vec![Term::Var(e), Term::Var(c)])),
                FoExpr::not(FoExpr::not(FoExpr::Atom(QueryAtom::new(
                    pref,
                    vec![Term::Var(c)],
                )))),
            ])),
        ),
        vec!["c".into(), "e".into()],
    );
    (setting, Query::Fo(fo), db)
}

/// The analysis A/B suite. Every shipped workload must pass the analyzer
/// with no Error-level diagnostics — a broken bench instance fails the run
/// (and therefore CI) instead of silently benchmarking garbage.
fn analysis_suite(inv: &Invocation) -> Vec<AnalysisCell> {
    let mut cells = Vec::new();
    let sizes = [8usize, 16, 32];
    let largest = *sizes.last().unwrap();
    for &n in &sizes {
        let (setting, query, db) = analysis_instance(n);
        let report = ric::analyze(&setting, &query);
        fail_on_error_diagnostics("analysis A/B workload", &report);
        let budget = bounded(SearchBudget::default(), inv);

        let start = Instant::now();
        let vf = rcdp(&setting, &query, &db, &budget).expect("well-formed instance");
        let fo_us = start.elapsed().as_micros();

        let collector = Collector::new();
        let start = Instant::now();
        let va =
            try_rcdp_analyzed_probed(&setting, &query, &db, &budget, Probe::attached(&collector))
                .expect("analyzer-gated decision")
                .verdict;
        let analyzed_us = start.elapsed().as_micros();

        cells.push(AnalysisCell {
            cell: format!("(FO syntax, CQ fragment) master n={n}"),
            size: n,
            largest: n == largest,
            fo_us,
            analyzed_us,
            agree: std::mem::discriminant(&vf) == std::mem::discriminant(&va),
            downgrades: collector.report().counter("analysis.downgrade"),
        });
    }
    cells
}

/// CI gate: any Error-level diagnostic in a shipped workload aborts the run.
fn fail_on_error_diagnostics(what: &str, report: &ric::AnalysisReport) {
    if report.has_errors() {
        eprintln!("regen_tables: {what} fails static analysis:");
        for d in report.errors() {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

/// Run the shipped engine/par-suite workloads through the analyzer too — the
/// artifacts must never be regenerated from settings the gate would reject.
fn lint_shipped_workloads() {
    let (setting, db) = fd_instance(8);
    let _ = db;
    let cq: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
        .expect("fixed query")
        .into();
    fail_on_error_diagnostics("engine A/B CQ workload", &ric::analyze(&setting, &cq));
    let ucq: Query = parse_ucq(
        &setting.schema,
        "Q(C) :- Supt('e0', D, C). Q(C) :- Supt('e1', D, C).",
    )
    .expect("fixed query")
    .into();
    fail_on_error_diagnostics("engine A/B UCQ workload", &ric::analyze(&setting, &ucq));
}

fn print_analysis_suite(cells: &[AnalysisCell], median: f64) {
    println!("\nAnalysis A/B - naive FO dispatch vs analyzer-gated dispatch");
    println!("===========================================================");
    println!(
        "{:<42} {:>12} {:>12} {:>9} {:>7} {:>6}",
        "cell", "fo", "analyzed", "speedup", "agree", "downgr"
    );
    println!("{}", "-".repeat(95));
    for c in cells {
        println!(
            "{:<42} {:>9} us {:>9} us {:>8.1}x {:>7} {:>6}",
            c.cell,
            c.fo_us,
            c.analyzed_us,
            c.speedup(),
            c.agree,
            c.downgrades
        );
    }
    println!("median speedup at largest size: {median:.1}x");
}

fn write_analysis_suite(path: &str, cells: &[AnalysisCell], median: f64, meta: &Json) {
    let doc = Json::obj([
        ("source", Json::from("regen_tables")),
        ("meta", meta.clone()),
        (
            "dispatches",
            Json::arr(["fo_cell", "analyzed"].map(Json::from)),
        ),
        ("cells", Json::arr(cells.iter().map(AnalysisCell::to_json))),
        ("median_speedup_at_largest", Json::from(median)),
    ]);
    match std::fs::write(path, format!("{}\n", doc.pretty())) {
        Ok(()) => println!("wrote {path} ({} cells)", cells.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    println!("Relative Information Completeness: empirical Tables I and II");
    println!("(Fan & Geerts, PODS 2009 / TODS 2010; see EXPERIMENTS.md)");
    let inv = parse_invocation();
    println!("evaluation engine for the table cells: {}", inv.engine);
    if let Some(d) = inv.deadline {
        println!(
            "per-decision wall-clock deadline: {} ms (slow cells degrade to Unknown)",
            d.as_millis()
        );
    }
    let t1 = table1(&inv);
    print_table("Table I - RCDP(L_Q, L_C)", &t1);
    let t2 = table2(&inv);
    print_table("Table II - RCQP(L_Q, L_C)", &t2);
    let engine_cells = engine_suite(&inv);
    let median = median_speedup_at_largest(&engine_cells);
    print_engine_suite(&engine_cells, median);
    lint_shipped_workloads();
    let analysis_cells = analysis_suite(&inv);
    let analysis_median = self::median(
        analysis_cells
            .iter()
            .filter(|c| c.largest)
            .map(AnalysisCell::speedup)
            .collect(),
    );
    print_analysis_suite(&analysis_cells, analysis_median);
    let par_cells = par_suite(&inv);
    let par_median = self::median(
        par_cells
            .iter()
            .filter(|c| c.largest)
            .map(ParCell::speedup)
            .collect(),
    );
    print_par_suite(&par_cells, inv.workers, par_median);
    let (plan_cells, plan_reuse) = plan_suite(&inv);
    let plan_median = self::median(
        plan_cells
            .iter()
            .filter(|c| c.largest)
            .map(PlanCell::speedup)
            .collect(),
    );
    print_plan_suite(&plan_cells, &plan_reuse, plan_median);
    println!();
    let meta = meta_json(&inv);
    write_table("BENCH_TABLE1.json", "I", "RCDP(L_Q, L_C)", &t1, &meta);
    write_table("BENCH_TABLE2.json", "II", "RCQP(L_Q, L_C)", &t2, &meta);
    write_engine_suite("BENCH_ENGINE.json", &engine_cells, median, &meta);
    write_par_suite("BENCH_PAR.json", &par_cells, inv.workers, par_median, &meta);
    write_plan_suite(
        "BENCH_PLAN.json",
        &plan_cells,
        &plan_reuse,
        plan_median,
        &meta,
    );
    write_analysis_suite(
        "BENCH_ANALYSIS.json",
        &analysis_cells,
        analysis_median,
        &meta,
    );
    if let Some(path) = &inv.trace {
        write_trace(path, &inv);
    }
}

/// Stream a JSONL decision trace to `path`: a handful of representative
/// decisions run through the `try_` facade with one shared [`TraceState`]
/// attached, so each decision appears as one root `decision` span with
/// monotonically increasing span ids. This is the input format of the
/// `ric-trace` CLI (`tree` / `prune` / `diff`).
fn write_trace(path: &str, inv: &Invocation) {
    use ric::{JsonlSink, TraceState};

    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("could not create {path}: {e}");
            std::process::exit(1);
        }
    };
    let sink = JsonlSink::new(file);
    let trace = TraceState::new();
    let budget = bounded(SearchBudget::default(), inv);
    let mut rng = SplitMix64::seed_from_u64(7);
    let params = WorkloadParams {
        n_customers: 12,
        n_employees: 3,
        n_support: 24,
    };
    let inst = planted_rcdp(&params, false, &mut rng);
    let mut decisions = 0usize;
    let mut run = |what: &str, outcome: Result<(), String>| match outcome {
        Ok(()) => decisions += 1,
        Err(e) => eprintln!("regen_tables: traced {what} failed: {e}"),
    };

    // Decision 1: the planted RCDP workload under the invocation's engine —
    // the typical sequential trace with depth profile and cc attribution.
    run(
        "rcdp",
        try_rcdp_probed(
            &inst.setting,
            &inst.query,
            &inst.db,
            &budget,
            Probe::attached(&sink).with_trace(&trace),
        )
        .map(drop)
        .map_err(|e| e.to_string()),
    );

    // Decision 2: the same decision under the parallel engine — adds the
    // per-worker chunk timeline notes and the merged chunk profile.
    let par_budget = budget.with_engine(Engine::parallel(inv.workers));
    run(
        "parallel rcdp",
        try_rcdp_probed(
            &inst.setting,
            &inst.query,
            &inst.db,
            &par_budget,
            Probe::attached(&sink).with_trace(&trace),
        )
        .map(drop)
        .map_err(|e| e.to_string()),
    );

    // Decision 3: RCQP on the same setting — the candidate-search span
    // family, and on tight budgets an `explain.frontier` narration.
    run(
        "rcqp",
        try_rcqp_probed(
            &inst.setting,
            &inst.query,
            &budget,
            Probe::attached(&sink).with_trace(&trace),
        )
        .map(drop)
        .map_err(|e| e.to_string()),
    );

    // Decision 4: a CQ-bodied FD setting under the planned engine — the
    // plan.explain / plan.cards telemetry the `ric-trace plan` report
    // renders (the planted workload's projection-bodied constraint set is
    // a pure IND set, which takes the containment shortcut and plans
    // nothing, so it cannot exercise this path).
    let (plan_setting, plan_db) = fd_instance(8);
    let plan_query: Query = parse_cq(&plan_setting.schema, "Q(C) :- Supt('e0', D, C).")
        .expect("fixed query")
        .into();
    let plan_budget = budget.with_engine(Engine::planned(1));
    run(
        "planned rcdp",
        try_rcdp_probed(
            &plan_setting,
            &plan_query,
            &plan_db,
            &plan_budget,
            Probe::attached(&sink).with_trace(&trace),
        )
        .map(drop)
        .map_err(|e| e.to_string()),
    );

    sink.flush();
    println!("wrote {path} ({decisions} traced decisions)");
}

//! `bench_monitor` — incremental monitoring vs. per-txn from-scratch
//! re-decides.
//!
//! The streaming [`ric::Monitor`] claims that keeping RCDP verdicts
//! continuously up to date is much cheaper than re-deciding after every
//! transaction. This binary measures that claim on a multi-department CRM
//! workload scaled to the largest Table I cells the workspace benches: one
//! schema with four support tables `Supt0..Supt3(eid, dept, cid)`, each
//! IND-bounded by the shared master customer list and each carrying its own
//! registered completeness question (`(CQ, INDs)`, the Example 1.1 shape).
//! A seeded append-dominated stream mutates one department per transaction
//! — admissible inserts, with occasional deletes that flip that
//! department's verdict to Incomplete until later inserts re-cover it — and
//! every transaction is costed two ways:
//!
//! * **incremental** — one `Monitor::apply` call: the three untouched
//!   settings skip by footprint in O(1), and the touched one rides the
//!   net-change/monotonicity/memo fast paths wherever sound;
//! * **from scratch** — `try_rcdp_prepared` for *all four* settings on the
//!   materialized database (a re-decider has no footprint information),
//!   reusing prepared settings hoisted out of the loop, so the baseline is
//!   the strongest plausible re-decide strategy, not a strawman that also
//!   re-compiles preparations per txn.
//!
//! The headline number is `speedup_median`: the median per-txn from-scratch
//! cost divided by the median per-txn incremental cost over the stream. The
//! acceptance bar is ≥5× at the largest cells. Every cell also re-asserts
//! verdict identity for every setting after every transaction
//! (`verdicts_identical`), the same equality the `monitor_differential.rs`
//! suite pins: kinds agree, and Incomplete counterexamples certify against
//! the current state.
//!
//! Writes `BENCH_MONITOR.json` to the current directory; see EXPERIMENTS.md
//! for the schema. Run with
//! `cargo run --release -p ric-bench --bin bench_monitor`.

use std::time::Instant;

use ric::complete::rcdp::certify_counterexample;
use ric::prelude::*;
use ric::{Engine, Monitor, Op, SettingId, SettingVerdict, SplitMix64, Txn};

const DEPTS: usize = 4;

struct MonitorCell {
    cell: String,
    engine: &'static str,
    batch: usize,
    txns: usize,
    settings: usize,
    median_incremental_micros: u128,
    median_scratch_micros: u128,
    speedup_median: f64,
    skips: u64,
    redecides: u64,
    memo_hits: u64,
    fast_completes: u64,
    claim: &'static str,
    ok: bool,
    verdicts_identical: bool,
}

impl MonitorCell {
    fn to_json(&self) -> ric::telemetry::Json {
        use ric::telemetry::Json;
        Json::obj([
            ("cell", Json::from(self.cell.as_str())),
            ("engine", Json::from(self.engine)),
            ("batch", Json::from(self.batch as u64)),
            ("txns", Json::from(self.txns as u64)),
            ("settings", Json::from(self.settings as u64)),
            (
                "median_incremental_micros",
                Json::from(self.median_incremental_micros),
            ),
            (
                "median_scratch_micros",
                Json::from(self.median_scratch_micros),
            ),
            ("speedup_median", Json::from(self.speedup_median)),
            ("skips", Json::from(self.skips)),
            ("redecides", Json::from(self.redecides)),
            ("memo_hits", Json::from(self.memo_hits)),
            ("fast_completes", Json::from(self.fast_completes)),
            ("claim", Json::from(self.claim)),
            ("ok", Json::from(self.ok)),
            ("verdicts_identical", Json::from(self.verdicts_identical)),
        ])
    }
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The multi-department CRM workload: `DEPTS` support tables, one shared
/// master customer list, one completeness question per table.
struct Workload {
    schema: Schema,
    master_schema: Schema,
    dm: Database,
    supt: Vec<RelId>,
    settings: Vec<(Setting, Query)>,
    n_customers: usize,
}

fn workload(n_customers: usize) -> Workload {
    let schema = Schema::from_relations(
        (0..DEPTS)
            .map(|i| RelationSchema::infinite(format!("Supt{i}"), &["eid", "dept", "cid"]))
            .collect(),
    )
    .expect("fixed schema");
    let master_schema = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])])
        .expect("fixed schema");
    let dcust = master_schema.rel_id("DCust").expect("fixed relation");
    let mut dm = Database::empty(&master_schema);
    for c in 0..n_customers {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let supt: Vec<RelId> = (0..DEPTS)
        .map(|i| schema.rel_id(&format!("Supt{i}")).expect("fixed relation"))
        .collect();
    let settings = supt
        .iter()
        .enumerate()
        .map(|(i, &rel)| {
            let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(rel, vec![2])),
                dcust,
                vec![0],
            )]);
            let q: Query = parse_cq(&schema, &format!("Q(C) :- Supt{i}('e0', D, C)."))
                .expect("fixed query")
                .into();
            (
                Setting::new(schema.clone(), master_schema.clone(), dm.clone(), v),
                q,
            )
        })
        .collect();
    Workload {
        schema,
        master_schema,
        dm,
        supt,
        settings,
        n_customers,
    }
}

/// One transaction against a single department: append-dominated admissible
/// ops (the OLTP-typical shape), with occasional deletes of `e0`'s coverage
/// on a small hot set of customers — each delete flips that department's
/// verdict to Incomplete until the hot-set churn re-covers it, so the
/// stream keeps exercising real verdict transitions without parking every
/// department in a permanently broken state.
fn random_txn(rng: &mut SplitMix64, w: &Workload, batch: usize) -> Txn {
    let rel = w.supt[rng.random_range(0..DEPTS)];
    let mut ops = Vec::with_capacity(batch);
    for _ in 0..batch {
        let c = format!("c{}", rng.random_range(0..w.n_customers));
        let hot = format!("c{}", rng.random_range(0..2));
        let e = format!("e{}", rng.random_range(1..4));
        let d = format!("d{}", rng.random_range(0..3));
        let tup =
            |e: &str, d: &str, c: &str| Tuple::new([Value::str(e), Value::str(d), Value::str(c)]);
        match rng.random_range(0..32) {
            0..=9 => ops.push(Op::insert(rel, tup("e0", "d0", &hot))),
            10..=19 => ops.push(Op::insert(rel, tup("e0", "d0", &c))),
            20..=30 => ops.push(Op::insert(rel, tup(&e, &d, &c))),
            _ => ops.push(Op::delete(rel, tup("e0", "d0", &hot))),
        }
    }
    Txn::new(ops)
}

/// The verdict-identity check of `monitor_differential.rs`: kinds agree and
/// Incomplete counterexamples certify on the current state.
fn verdicts_agree(
    monitored: &SettingVerdict,
    fresh: &Verdict,
    setting: &Setting,
    query: &Query,
    db: &Database,
) -> bool {
    match (monitored, fresh) {
        (SettingVerdict::Decided(Verdict::Complete), Verdict::Complete) => true,
        (SettingVerdict::Decided(Verdict::Unknown { stats: a }), Verdict::Unknown { stats: b }) => {
            a.limit == b.limit
        }
        (SettingVerdict::Decided(Verdict::Incomplete(a)), Verdict::Incomplete(b)) => {
            certify_counterexample(setting, query, db, a).unwrap_or(false)
                && certify_counterexample(setting, query, db, b).unwrap_or(false)
        }
        _ => false,
    }
}

/// One cell's configuration: workload sizing plus stream shape.
struct CellCfg {
    label: String,
    n_customers: usize,
    n_support: usize,
    engine: Engine,
    engine_name: &'static str,
    batch: usize,
    txns: usize,
    seed: u64,
}

/// Run one cell: stream `txns` transactions of `batch` ops through a
/// monitor, timing each incremental apply against from-scratch re-decides
/// of every setting on the materialized database.
fn monitor_cell(cfg: &CellCfg) -> MonitorCell {
    let CellCfg {
        label,
        n_customers,
        n_support,
        engine,
        engine_name,
        batch,
        txns,
        seed,
    } = cfg;
    let (n_customers, n_support, engine, engine_name, batch, txns, seed) = (
        *n_customers,
        *n_support,
        *engine,
        *engine_name,
        *batch,
        *txns,
        *seed,
    );
    let budget = SearchBudget {
        engine,
        ..SearchBudget::default()
    };
    let mut rng = SplitMix64::seed_from_u64(seed);
    let w = workload(n_customers);

    let mut mon = Monitor::new(
        w.schema.clone(),
        w.master_schema.clone(),
        w.dm.clone(),
        budget,
    )
    .expect("workload schemas are consistent");
    let ids: Vec<SettingId> = w
        .settings
        .iter()
        .enumerate()
        .map(|(i, (s, q))| {
            mon.register(format!("dept{i}"), s.v.clone(), q.clone())
                .expect("workload setting registers")
        })
        .collect();

    // Plant each department complete (e0 saturates the master list) plus
    // background noise, loaded in one transaction.
    let mut load = Vec::new();
    for &rel in &w.supt {
        for c in 0..n_customers {
            load.push(Op::insert(
                rel,
                Tuple::new([
                    Value::str("e0"),
                    Value::str("d0"),
                    Value::str(format!("c{c}")),
                ]),
            ));
        }
        for _ in 0..n_support {
            load.push(Op::insert(
                rel,
                Tuple::new([
                    Value::str(format!("e{}", rng.random_range(1..4))),
                    Value::str(format!("d{}", rng.random_range(0..3))),
                    Value::str(format!("c{}", rng.random_range(0..n_customers))),
                ]),
            ));
        }
    }
    mon.apply(&Txn::new(load)).expect("initial load is valid");

    // The from-scratch baseline reuses one preparation per setting for the
    // whole stream (the master data never changes here), so it pays only
    // the decides.
    let prepared: Vec<_> = w
        .settings
        .iter()
        .map(|(s, _)| ric::prepare(s, mon.db(), engine).expect("workload setting prepares"))
        .collect();

    let before = mon.counters().clone();
    let mut inc_micros: Vec<u128> = Vec::with_capacity(txns);
    let mut scratch_micros: Vec<u128> = Vec::with_capacity(txns);
    let mut identical = true;
    for _ in 0..txns {
        let txn = random_txn(&mut rng, &w, batch);

        let start = Instant::now();
        mon.apply(&txn).expect("stream ops are schema-valid");
        inc_micros.push(start.elapsed().as_micros());

        let start = Instant::now();
        let fresh: Vec<Verdict> = prepared
            .iter()
            .zip(&w.settings)
            .map(|(p, (_, q))| {
                ric::try_rcdp_prepared(p, q, mon.db(), &budget)
                    .expect("materialized state stays partially closed")
            })
            .collect();
        scratch_micros.push(start.elapsed().as_micros());

        for ((id, (setting, query)), fresh) in ids.iter().zip(&w.settings).zip(&fresh) {
            identical &= verdicts_agree(
                mon.verdict(*id).expect("registered setting"),
                fresh,
                setting,
                query,
                mon.db(),
            );
        }
    }
    let after = mon.counters().clone();

    let median_incremental_micros = median(&mut inc_micros).max(1);
    let median_scratch_micros = median(&mut scratch_micros).max(1);
    let speedup_median = median_scratch_micros as f64 / median_incremental_micros as f64;
    MonitorCell {
        cell: label.to_string(),
        engine: engine_name,
        batch,
        txns,
        settings: DEPTS,
        median_incremental_micros,
        median_scratch_micros,
        speedup_median,
        skips: after.skip - before.skip,
        redecides: after.redecide - before.redecide,
        memo_hits: after.memo_hit - before.memo_hit,
        fast_completes: after.fast_complete - before.fast_complete,
        claim: "median incremental apply >= 5x faster than from-scratch re-decides",
        ok: speedup_median >= 5.0,
        verdicts_identical: identical,
    }
}

fn main() {
    let mut cells: Vec<MonitorCell> = Vec::new();
    for (n_customers, n_support, size) in [(24, 48, "n=24"), (48, 96, "n=48")] {
        for (engine, name) in [
            (Engine::Indexed, "indexed"),
            (Engine::Parallel { workers: 4 }, "parallel"),
        ] {
            for batch in [1usize, 8] {
                cells.push(monitor_cell(&CellCfg {
                    label: format!("(CQ, INDs) 4-dept CRM {size} stream"),
                    n_customers,
                    n_support,
                    engine,
                    engine_name: name,
                    batch,
                    txns: 40,
                    seed: 0x5EED ^ (batch as u64) << 8,
                }));
            }
        }
    }

    println!(
        "{:<34} {:<8} {:>5} {:>10} {:>10} {:>8}  ok",
        "cell", "engine", "batch", "inc µs", "scratch µs", "speedup"
    );
    println!("{}", "-".repeat(90));
    let mut all_ok = true;
    for c in &cells {
        all_ok &= c.ok && c.verdicts_identical;
        println!(
            "{:<34} {:<8} {:>5} {:>10} {:>10} {:>7.1}x  {}{}",
            c.cell,
            c.engine,
            c.batch,
            c.median_incremental_micros,
            c.median_scratch_micros,
            c.speedup_median,
            if c.ok { "ok" } else { "UNDER 5x" },
            if c.verdicts_identical {
                ""
            } else {
                "  VERDICT DRIFT"
            },
        );
    }

    use ric::telemetry::Json;
    let doc = Json::obj([
        ("schema", Json::from("bench_monitor/v1")),
        ("source", Json::from("bench_monitor")),
        (
            "claim",
            Json::from(
                "keeping verdicts current with Monitor::apply is >= 5x faster (median over the \
                 stream) than re-deciding every registered setting from scratch after every \
                 transaction, with identical verdicts after every transaction",
            ),
        ),
        ("all_ok", Json::from(all_ok)),
        (
            "cells",
            Json::arr(cells.iter().map(MonitorCell::to_json).collect::<Vec<_>>()),
        ),
    ]);
    std::fs::write("BENCH_MONITOR.json", format!("{}\n", doc.pretty()))
        .expect("write BENCH_MONITOR.json");
    println!(
        "\nwrote BENCH_MONITOR.json ({} cells, all_ok={all_ok})",
        cells.len()
    );
}

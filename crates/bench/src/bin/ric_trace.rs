//! `ric-trace` — render, summarize, and diff decision trace files.
//!
//! The `try_` facade entry points and `regen_tables --trace FILE` stream
//! decision telemetry as JSONL (one [`ric::Event`] per line, the
//! [`ric::JsonlSink`] schema). This CLI rebuilds those streams offline:
//!
//! * `ric-trace tree FILE` — render every decision in the file as a
//!   flamegraph-style text tree (one root `decision` span per decision,
//!   children indented, both timebases per span), followed by the decision's
//!   outcome/limit notes. The stream is segmented on root `span_open` lines,
//!   and every segment must satisfy the decision-trace contract (exactly one
//!   root, every span closed) — a malformed trace exits nonzero.
//! * `ric-trace prune FILE [K]` — the top-K pruning report: which pruning
//!   counters (`prune.cc.NN` constraint attribution, `prune.head` head
//!   filter, `depth.pruned.NN` per-depth families) did the work, per
//!   decision and totalled over the file.
//! * `ric-trace plan FILE` — the query-plan report for planned-engine
//!   traces: per decision, whether the preparation was compiled or reused,
//!   the chosen join orders with per-atom access paths and cost estimates
//!   (the `plan.explain` note), and the planner's assumed row counts against
//!   the decision database's actual ones (the `plan.cards` note).
//! * `ric-trace diff A B` — compare two trace files (summed counters, span
//!   wall/tick totals, decision counts) or two `BENCH_*.json` artifacts
//!   (per-cell micros and outcome drift, keyed by the `cell` string). The
//!   artifact mode is detected by the top-level `cells` array.
//!
//! Exit codes: 0 on success, 1 on malformed input, 2 on usage errors.
//!
//! Everything here re-parses what the workspace itself wrote — the JSON
//! model, the tree builder, and the top-K helper are the same code the
//! in-process [`ric::Explain`] path uses, so the CLI cannot drift from the
//! sink schema without a test noticing.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ric::telemetry::json::{self, Json};
use ric::telemetry::{top_k_counters, SpanTree, TreeBuilder};
use ric_bench::trace_load::{load_trace as load_trace_typed, Segment};

const USAGE: &str = "usage: ric-trace <command> [args]\n\
  tree  FILE       render each decision's span tree from a JSONL trace\n\
  prune FILE [K]   top-K pruning report (default K=10)\n\
  plan  FILE       query-plan report (join orders, estimates, cardinalities)\n\
  diff  A B        diff two JSONL traces, or two BENCH_*.json artifacts";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["tree", path] => cmd_tree(path),
        ["prune", path] => cmd_prune(path, 10),
        ["prune", path, k] => match k.parse::<usize>() {
            Ok(k) if k >= 1 => cmd_prune(path, k),
            _ => {
                eprintln!("ric-trace: prune expects a positive K, got {k:?}");
                return ExitCode::from(2);
            }
        },
        ["plan", path] => cmd_plan(path),
        ["diff", a, b] => cmd_diff(a, b),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ric-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

// ── JSONL ingestion ─────────────────────────────────────────────────────
//
// The parser itself lives in `ric_bench::trace_load` so tests can drive it
// against corrupt and truncated inputs without shelling out to this binary;
// its typed, line-numbered [`TraceLoadError`] renders here as the CLI's
// one-line failure message.

fn load_trace(path: &str) -> Result<Vec<Segment>, String> {
    load_trace_typed(path).map_err(|e| e.to_string())
}

// ── tree ────────────────────────────────────────────────────────────────

fn cmd_tree(path: &str) -> Result<(), String> {
    let segments = load_trace(path)?;
    let n = segments.len();
    for (i, mut seg) in segments.into_iter().enumerate() {
        let tree = seg_tree_checked(std::mem::take(&mut seg.tree), i + 1)?;
        println!("decision {}/{n}", i + 1);
        for line in tree.render().lines() {
            println!("  {line}");
        }
        if let Some(outcome) = seg.outcome() {
            println!("  outcome: {outcome}");
        }
        if let Some(limit) = seg.limit() {
            println!("  limit:   {limit}");
        }
        for (name, detail) in seg.explains() {
            println!("  {name}: {detail}");
        }
        for (name, reason) in &seg.interrupts {
            println!("  interrupt: {name} ({reason})");
        }
        println!();
    }
    Ok(())
}

/// Finish a segment's tree and hold it to the decision-trace contract.
fn seg_tree_checked(builder: TreeBuilder, decision: usize) -> Result<SpanTree, String> {
    let tree = builder.finish();
    tree.require_decision()
        .map_err(|e| format!("decision {decision}: {e}"))?;
    Ok(tree)
}

// ── prune ───────────────────────────────────────────────────────────────

/// The counter families that record pruning work.
const PRUNE_PREFIXES: [&str; 2] = ["prune.", "depth.pruned."];

fn prune_counters(counters: &BTreeMap<String, u64>, k: usize) -> Vec<(String, u64)> {
    let mut hits: Vec<(String, u64)> = PRUNE_PREFIXES
        .iter()
        .flat_map(|prefix| top_k_counters(counters, prefix, k))
        .collect();
    // Re-rank the union of both families: descending by count, name-stable.
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

fn print_prune_block(counters: &BTreeMap<String, u64>, k: usize) {
    let hits = prune_counters(counters, k);
    if hits.is_empty() {
        println!("  (no pruning counters)");
        return;
    }
    let candidates: u64 = counters
        .iter()
        .filter(|(name, _)| name.starts_with("depth.candidates."))
        .map(|(_, v)| v)
        .sum();
    for (name, count) in hits {
        println!("  {name:<24} {count:>12}");
    }
    if candidates > 0 {
        println!("  {:<24} {candidates:>12}", "candidates (all depths)");
    }
}

fn cmd_prune(path: &str, k: usize) -> Result<(), String> {
    let segments = load_trace(path)?;
    let n = segments.len();
    let mut total: BTreeMap<String, u64> = BTreeMap::new();
    for (i, seg) in segments.iter().enumerate() {
        let label = seg.outcome().unwrap_or("?");
        println!("decision {}/{n} (outcome: {label})", i + 1);
        print_prune_block(&seg.counters, k);
        println!();
        for (name, v) in &seg.counters {
            *total.entry(name.clone()).or_insert(0) += v;
        }
    }
    println!("total over {n} decision(s)");
    print_prune_block(&total, k);
    Ok(())
}

// ── plan ────────────────────────────────────────────────────────────────

fn cmd_plan(path: &str) -> Result<(), String> {
    let segments = load_trace(path)?;
    let n = segments.len();
    let mut planned = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        let label = seg.outcome().unwrap_or("?");
        println!("decision {}/{n} (outcome: {label})", i + 1);
        match ric_bench::plan_report::plan_report(seg) {
            Some(report) => {
                planned += 1;
                for line in report.lines() {
                    println!("  {line}");
                }
            }
            None => println!("  (no plan telemetry — not a planned-engine decision)"),
        }
        println!();
    }
    if planned == 0 {
        println!("no planned-engine decisions in {n} segment(s); run under Engine::Planned");
    }
    Ok(())
}

// ── diff ────────────────────────────────────────────────────────────────

fn cmd_diff(a: &str, b: &str) -> Result<(), String> {
    let bench_a = load_bench(a)?;
    let bench_b = load_bench(b)?;
    match (bench_a, bench_b) {
        (Some(da), Some(db)) => diff_bench(a, &da, b, &db),
        (None, None) => diff_traces(a, b),
        _ => Err(format!(
            "{a} and {b} are different kinds of files (one BENCH artifact, one trace)"
        )),
    }
}

/// Try to read `path` as a `BENCH_*.json` artifact: a single JSON document
/// with a top-level `cells` array. Returns `Ok(None)` for JSONL traces.
fn load_bench(path: &str) -> Result<Option<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    match json::parse(&text) {
        Ok(doc) if doc.get("cells").is_some() => Ok(Some(doc)),
        Ok(_) | Err(_) => Ok(None),
    }
}

/// Warn (loudly, before the table) when two BENCH artifacts were produced
/// under different conditions: comparing timings across engines, worker
/// counts, or deadlines is apples to oranges, and outcome drift may be
/// expected rather than a regression. Previously `meta` was silently
/// ignored.
fn warn_meta_mismatch(name_a: &str, a: &Json, name_b: &str, b: &Json) {
    let field = |doc: &Json, key: &str| -> String {
        doc.get("meta")
            .and_then(|m| m.get(key))
            .map(|v| match v.as_str() {
                Some(s) => s.to_string(),
                None => v
                    .as_int()
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "?".into()),
            })
            .unwrap_or_else(|| "absent".into())
    };
    let mut drift = Vec::new();
    for key in ["engine", "workers", "deadline_ms", "schema_version"] {
        let va = field(a, key);
        let vb = field(b, key);
        if va != vb {
            drift.push(format!("{key}: A={va} B={vb}"));
        }
    }
    if !drift.is_empty() {
        println!("WARNING: artifacts were produced under different conditions; timings and");
        println!("         outcomes may differ for that reason alone, not as a regression.");
        for line in &drift {
            println!("         {line}");
        }
        println!("         (A = {name_a}, B = {name_b})");
        println!();
    }
}

fn diff_bench(name_a: &str, a: &Json, name_b: &str, b: &Json) -> Result<(), String> {
    warn_meta_mismatch(name_a, a, name_b, b);
    let cells = |doc: &Json, name: &str| -> Result<Vec<(String, u128, String)>, String> {
        let arr = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: `cells` is not an array"))?;
        arr.iter()
            .enumerate()
            .map(|(i, cell)| {
                let key = cell
                    .get("cell")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{name}: cell {i} has no `cell` string"))?
                    .to_string();
                // Table cells time one decision (`micros`); the A/B suites
                // time two arms — fall back to the second arm's column.
                let micros = ["micros", "indexed_micros", "analyzed_micros"]
                    .iter()
                    .find_map(|k| cell.get(k).and_then(Json::as_int))
                    .and_then(|i| u128::try_from(i).ok())
                    .ok_or_else(|| format!("{name}: cell {key:?} has no timing field"))?;
                let outcome = cell
                    .get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("-")
                    .to_string();
                Ok((key, micros, outcome))
            })
            .collect()
    };
    let ca = cells(a, name_a)?;
    let cb = cells(b, name_b)?;
    let index_b: BTreeMap<&str, (u128, &str)> = cb
        .iter()
        .map(|(k, us, out)| (k.as_str(), (*us, out.as_str())))
        .collect();
    println!(
        "{:<42} {:>12} {:>12} {:>9}",
        "cell", "A µs", "B µs", "ratio"
    );
    println!("{}", "-".repeat(80));
    let mut only_a = 0usize;
    for (key, us_a, out_a) in &ca {
        match index_b.get(key.as_str()) {
            Some((us_b, out_b)) => {
                let ratio = *us_b as f64 / (*us_a).max(1) as f64;
                let drift = if out_a != out_b {
                    "  OUTCOME DRIFT"
                } else {
                    ""
                };
                println!("{key:<42} {us_a:>12} {us_b:>12} {ratio:>8.2}x{drift}");
                if out_a != out_b {
                    println!("    A: {out_a}");
                    println!("    B: {out_b}");
                }
            }
            None => {
                only_a += 1;
                println!("{key:<42} {us_a:>12} {:>12} {:>9}", "-", "-");
            }
        }
    }
    let keys_a: std::collections::BTreeSet<&str> = ca.iter().map(|(k, ..)| k.as_str()).collect();
    let only_b: Vec<&str> = cb
        .iter()
        .map(|(k, ..)| k.as_str())
        .filter(|k| !keys_a.contains(k))
        .collect();
    for key in &only_b {
        println!("{key:<42} {:>12} {:>12} {:>9}", "-", "?", "-");
    }
    if only_a > 0 || !only_b.is_empty() {
        println!("(cells only in A: {only_a}, only in B: {})", only_b.len());
    }
    Ok(())
}

/// File-wide aggregate of a trace: summed counters, per-name span totals.
struct TraceTotals {
    decisions: usize,
    counters: BTreeMap<String, u64>,
    span_micros: BTreeMap<String, u128>,
    span_ticks: BTreeMap<String, u64>,
}

fn trace_totals(path: &str) -> Result<TraceTotals, String> {
    let segments = load_trace(path)?;
    let mut totals = TraceTotals {
        decisions: segments.len(),
        counters: BTreeMap::new(),
        span_micros: BTreeMap::new(),
        span_ticks: BTreeMap::new(),
    };
    for (i, seg) in segments.into_iter().enumerate() {
        let tree = seg_tree_checked(seg.tree, i + 1)?;
        for record in tree.records() {
            *totals.span_micros.entry(record.name.clone()).or_insert(0) += record.micros;
            *totals.span_ticks.entry(record.name.clone()).or_insert(0) += record.ticks;
        }
        for (name, v) in seg.counters {
            *totals.counters.entry(name).or_insert(0) += v;
        }
    }
    Ok(totals)
}

fn diff_traces(a: &str, b: &str) -> Result<(), String> {
    let ta = trace_totals(a)?;
    let tb = trace_totals(b)?;
    println!("decisions: A={} B={}", ta.decisions, tb.decisions);

    println!("\ncounters (summed over all decisions; only differing names)");
    println!("{:<28} {:>14} {:>14} {:>14}", "counter", "A", "B", "delta");
    println!("{}", "-".repeat(74));
    let names: std::collections::BTreeSet<&String> =
        ta.counters.keys().chain(tb.counters.keys()).collect();
    let mut differing = 0usize;
    for name in names {
        let va = ta.counters.get(name).copied().unwrap_or(0);
        let vb = tb.counters.get(name).copied().unwrap_or(0);
        if va != vb {
            differing += 1;
            let delta = vb as i128 - va as i128;
            println!("{name:<28} {va:>14} {vb:>14} {delta:>+14}");
        }
    }
    if differing == 0 {
        println!("(all counters identical)");
    }

    println!("\nspans (wall µs summed per name; deterministic ticks alongside)");
    println!(
        "{:<28} {:>12} {:>12} {:>9} {:>9}",
        "span", "A µs", "B µs", "A ticks", "B ticks"
    );
    println!("{}", "-".repeat(76));
    let names: std::collections::BTreeSet<&String> =
        ta.span_micros.keys().chain(tb.span_micros.keys()).collect();
    for name in names {
        let ua = ta.span_micros.get(name).copied().unwrap_or(0);
        let ub = tb.span_micros.get(name).copied().unwrap_or(0);
        let ka = ta.span_ticks.get(name).copied().unwrap_or(0);
        let kb = tb.span_ticks.get(name).copied().unwrap_or(0);
        println!("{name:<28} {ua:>12} {ub:>12} {ka:>9} {kb:>9}");
    }
    Ok(())
}

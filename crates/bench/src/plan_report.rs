//! The `ric-trace plan` report: rebuild a planned-engine decision's query
//! plans from its trace segment.
//!
//! A decision run under [`ric::Engine::Planned`] records four counters
//! (`plan.compile` / `plan.reuse`, `plan.fallback`, `plan.cost`) and two
//! notes: `plan.explain` (one rendered plan per line — the chosen join order
//! with per-atom access paths and estimated cardinalities) and `plan.cards`
//! (`Rel planned=N actual=M` pairs comparing the row counts the planner
//! costed against with the decision database). [`plan_report`] renders all
//! of that back as an indented text block; decisions that never planned
//! (other engines, pure-IND settings) report as [`None`].

use crate::trace_load::Segment;
use std::fmt::Write;

/// One `Rel planned=N actual=M` entry from the `plan.cards` note.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CardRow {
    /// Relation display name.
    pub rel: String,
    /// Rows the planner costed against (the statistics snapshot).
    pub planned: u64,
    /// Rows in the decision database.
    pub actual: u64,
}

/// Parse a `plan.cards` note body (`"R planned=3 actual=5; S planned=0
/// actual=2"`). Entries that do not match the shape are skipped — the note
/// is advisory display data, not a contract worth failing a whole trace
/// over.
pub fn parse_cards(detail: &str) -> Vec<CardRow> {
    detail
        .split("; ")
        .filter_map(|entry| {
            let mut parts = entry.split_whitespace();
            let rel = parts.next()?.to_string();
            let planned = parts.next()?.strip_prefix("planned=")?.parse().ok()?;
            let actual = parts.next()?.strip_prefix("actual=")?.parse().ok()?;
            Some(CardRow {
                rel,
                planned,
                actual,
            })
        })
        .collect()
}

/// Render one decision's plan report, or `None` if the segment carries no
/// plan telemetry (not a planned-engine decision, or an IND-only setting
/// where nothing compiles).
pub fn plan_report(seg: &Segment) -> Option<String> {
    let compile = seg.counters.get("plan.compile").copied();
    let reuse = seg.counters.get("plan.reuse").copied();
    let explain = seg
        .notes
        .iter()
        .find(|(name, _)| name == "plan.explain")
        .map(|(_, detail)| detail.as_str());
    if compile.is_none() && reuse.is_none() && explain.is_none() {
        return None;
    }
    let mut out = String::new();
    match (reuse, compile) {
        (Some(n), _) if n > 0 => {
            let _ = writeln!(out, "preparation: reused ({n} decision(s) in segment)");
        }
        (_, Some(n)) => {
            let _ = writeln!(out, "preparation: compiled {n} constraint plan set(s)");
        }
        _ => {
            let _ = writeln!(out, "preparation: recorded without compile/reuse counters");
        }
    }
    let fallbacks = seg.counters.get("plan.fallback").copied().unwrap_or(0);
    let cost = seg.counters.get("plan.cost").copied().unwrap_or(0);
    let _ = writeln!(out, "static fallbacks: {fallbacks}");
    let _ = writeln!(out, "estimated cost: {cost}");
    match explain {
        Some(text) if !text.is_empty() => {
            let _ = writeln!(out, "join orders (per-atom access path and estimate):");
            for line in text.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        _ => {
            let _ = writeln!(out, "join orders: (none rendered)");
        }
    }
    let cards = seg
        .notes
        .iter()
        .find(|(name, _)| name == "plan.cards")
        .map(|(_, detail)| parse_cards(detail))
        .unwrap_or_default();
    if !cards.is_empty() {
        let _ = writeln!(
            out,
            "cardinalities (planner statistics vs decision database):"
        );
        for row in &cards {
            // actual/planned drift ratio; planned=0 means the planner saw an
            // empty relation (static fallback territory), shown as "-".
            let drift = if row.planned > 0 {
                format!("{:.2}x", row.actual as f64 / row.planned as f64)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "  {:<20} planned={:<10} actual={:<10} {drift}",
                row.rel, row.planned, row.actual
            );
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned_segment() -> Segment {
        let mut seg = Segment::default();
        seg.counters.insert("plan.compile".into(), 2);
        seg.counters.insert("plan.fallback".into(), 1);
        seg.counters.insert("plan.cost".into(), 37);
        seg.notes.push((
            "plan.explain".into(),
            "cc0.t0: R[a0] delta est=3.0 -> S[a1] probe(c0=v2) est=1.5 | cost=4.5".into(),
        ));
        seg.notes.push((
            "plan.cards".into(),
            "R planned=100 actual=150; S planned=0 actual=7".into(),
        ));
        seg
    }

    #[test]
    fn cards_note_round_trips() {
        let rows = parse_cards("R planned=100 actual=150; S planned=0 actual=7");
        assert_eq!(
            rows,
            vec![
                CardRow {
                    rel: "R".into(),
                    planned: 100,
                    actual: 150
                },
                CardRow {
                    rel: "S".into(),
                    planned: 0,
                    actual: 7
                },
            ]
        );
        // Garbage entries are dropped, not fatal.
        assert!(parse_cards("not a card").is_empty());
        assert!(parse_cards("").is_empty());
    }

    #[test]
    fn report_renders_compile_fallback_cost_and_cards() {
        let report = plan_report(&planned_segment()).expect("planned segment has a report");
        assert!(report.contains("compiled 2 constraint plan set(s)"));
        assert!(report.contains("static fallbacks: 1"));
        assert!(report.contains("estimated cost: 37"));
        assert!(report.contains("cc0.t0: R[a0] delta est=3.0"));
        assert!(report.contains("planned=100"));
        assert!(report.contains("1.50x"));
        // planned=0 renders a "-" drift, not a division by zero.
        assert!(report.contains('-'));
    }

    #[test]
    fn reuse_counter_wins_over_compile() {
        let mut seg = planned_segment();
        seg.counters.remove("plan.compile");
        seg.counters.insert("plan.reuse".into(), 3);
        let report = plan_report(&seg).expect("reused segment has a report");
        assert!(report.contains("reused (3 decision(s)"));
    }

    #[test]
    fn unplanned_segment_has_no_report() {
        let mut seg = Segment::default();
        seg.counters.insert("rcdp.valuations".into(), 10);
        seg.notes.push(("rcdp.outcome".into(), "complete".into()));
        assert!(plan_report(&seg).is_none());
    }
}

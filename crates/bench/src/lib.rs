//! Shared instance builders for the Table I / Table II benchmarks.
//!
//! Each function returns ready-to-decide instances for one complexity cell;
//! the in-tree benches (`cargo bench`) time the deciders on them, and the
//! `regen_tables` binary prints the empirical tables (verdicts validated
//! against the ground-truth oracles of `ric::reductions`) and writes the
//! machine-readable `BENCH_TABLE1.json` / `BENCH_TABLE2.json` artifacts.

pub mod harness;
pub mod plan_report;
pub mod trace_load;

use ric::prelude::*;
use ric::reductions::workload::{planted_rcdp, PlantedInstance, WorkloadParams};
use ric::reductions::{qbf, rcdp_sigma2, rcqp_conp, sat, tiling};
use ric::SplitMix64;

/// RCDP(CQ, INDs) on typical master-data workloads of growing size.
pub fn rcdp_workloads(sizes: &[usize]) -> Vec<(String, PlantedInstance)> {
    let mut rng = SplitMix64::seed_from_u64(7);
    let mut out = Vec::new();
    for &n in sizes {
        for complete in [true, false] {
            let params = WorkloadParams {
                n_customers: n,
                n_employees: 4,
                n_support: 2 * n,
            };
            let label = format!(
                "customers={n}/{}",
                if complete { "complete" } else { "incomplete" }
            );
            out.push((label, planted_rcdp(&params, complete, &mut rng)));
        }
    }
    out
}

/// RCDP(CQ, INDs) hardness instances from ∀*∃*-3SAT (Theorem 3.6), with the
/// oracle truth attached.
pub fn rcdp_sigma2_instances(
    shapes: &[(usize, usize, usize)],
) -> Vec<(String, Setting, Query, Database, bool)> {
    let mut rng = SplitMix64::seed_from_u64(11);
    let mut out = Vec::new();
    for &(n_forall, n_exists, n_clauses) in shapes {
        let phi = qbf::ForallExists::random(n_forall, n_exists, n_clauses, &mut rng);
        let truth = phi.eval();
        let (setting, q, db) = rcdp_sigma2::to_rcdp_instance(&phi);
        out.push((
            format!("forall={n_forall}/exists={n_exists}/clauses={n_clauses}"),
            setting,
            q,
            db,
            truth,
        ));
    }
    out
}

/// RCQP(CQ, INDs) hardness instances from 3SAT (Theorem 4.5(1)).
pub fn rcqp_conp_instances(shapes: &[(usize, usize)]) -> Vec<(String, Setting, Query, bool)> {
    let mut rng = SplitMix64::seed_from_u64(13);
    let mut out = Vec::new();
    for &(n_vars, n_clauses) in shapes {
        let phi = sat::Cnf::random_3sat(n_vars, n_clauses, &mut rng);
        let sat_truth = phi.satisfiable();
        let (setting, q) = rcqp_conp::to_rcqp_instance(&phi);
        out.push((
            format!("vars={n_vars}/clauses={n_clauses}"),
            setting,
            q,
            !sat_truth, // RCQ nonempty iff φ unsatisfiable
        ));
    }
    out
}

/// Tiling instances with their reductions (Theorem 4.5(2)); witness
/// verification is the decidable part the bench times.
pub fn tiling_instances(ns: &[u32]) -> Vec<(String, tiling::TilingInstance)> {
    ns.iter()
        .map(|&n| {
            (
                format!("grid={}x{}", 1 << n, 1 << n),
                tiling::TilingInstance {
                    n_tiles: 2,
                    horiz: [(0, 1), (1, 0)].into_iter().collect(),
                    vert: [(0, 1), (1, 0)].into_iter().collect(),
                    t0: 0,
                    n,
                },
            )
        })
        .collect()
}

/// A standard budget for the benches.
pub fn bench_budget() -> SearchBudget {
    SearchBudget::default()
}

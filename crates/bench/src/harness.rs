//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds fully offline, so the benches cannot pull in
//! criterion; this harness keeps the same group/label structure and prints
//! min / median / mean wall time per measurement. It makes no attempt at
//! statistical rigor (no outlier rejection, no warm-up calibration) — the
//! numbers are for spotting order-of-magnitude regressions, and
//! `regen_tables` is the artifact-producing entry point.

use std::hint::black_box;
use std::time::Instant;

/// A named group of measurements, printed as `group/label  …`.
pub struct Group {
    name: String,
    samples: usize,
}

/// Start a measurement group.
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        samples: 20,
    }
}

impl Group {
    /// Set how many timed runs each measurement takes (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Time `f` and print one result line.
    pub fn bench<T>(&mut self, label: impl AsRef<str>, mut f: impl FnMut() -> T) {
        // One untimed run warms caches and surfaces panics before timing.
        black_box(f());
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_nanos()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<u128>() / times.len() as u128;
        println!(
            "{}/{:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            self.name,
            label.as_ref(),
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            self.samples
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.1} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_samples_plus_warmup_times() {
        let mut calls = 0u32;
        group("t").sample_size(5).bench("label", || calls += 1);
        assert_eq!(calls, 6);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(25_000), "25.0 µs");
        assert_eq!(fmt_ns(50_000_000), "50.0 ms");
    }
}

//! JSONL trace ingestion shared by the `ric-trace` CLI and its tests.
//!
//! The `try_` facade entry points and `regen_tables --trace FILE` stream
//! decision telemetry as JSONL (one [`ric::Event`] per line, the
//! [`ric::JsonlSink`] schema). [`parse_trace`] rebuilds that stream into
//! per-decision [`Segment`]s; every way the input can be malformed —
//! truncated mid-record, not JSON at all, missing or mistyped fields, events
//! before any root span — surfaces as a typed [`TraceLoadError`] carrying the
//! 1-based line number, never a panic. A trace file is often the only
//! artifact left after the process that wrote it died mid-write, so the
//! parser must hold up against exactly the torn tails that scenario
//! produces.

use std::collections::BTreeMap;
use std::fmt;

use ric::telemetry::json::{self, Json};
use ric::telemetry::TreeBuilder;

/// A malformed or unreadable trace, located to a specific input line.
///
/// `line` is 1-based; `0` means the problem is with the file as a whole
/// (unreadable, or no decision spans at all) rather than any one line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceLoadError {
    /// The 1-based line the error was detected on (0 = whole file).
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl TraceLoadError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TraceLoadError {
            line,
            message: message.into(),
        }
    }

    fn whole_file(message: impl Into<String>) -> Self {
        TraceLoadError::at(0, message)
    }
}

impl fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceLoadError {}

/// One decision's worth of events, cut from the stream at root span opens.
#[derive(Debug, Default)]
pub struct Segment {
    /// The decision's span stream, ready to `finish()` into a tree.
    pub tree: TreeBuilder,
    /// Counter deltas summed per name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge high-water marks per name.
    pub gauges: BTreeMap<String, u64>,
    /// `(name, detail)` notes in stream order.
    pub notes: Vec<(String, String)>,
    /// `(name, reason)` cooperative interrupts in stream order.
    pub interrupts: Vec<(String, String)>,
}

impl Segment {
    /// The decider outcome note, if one fired.
    pub fn outcome(&self) -> Option<&str> {
        self.notes
            .iter()
            .find(|(name, _)| name.ends_with(".outcome"))
            .map(|(_, detail)| detail.as_str())
    }

    /// The budget-limit note, if the decision ended `Unknown`.
    pub fn limit(&self) -> Option<&str> {
        self.notes
            .iter()
            .find(|(name, _)| name.ends_with(".limit"))
            .map(|(_, detail)| detail.as_str())
    }

    /// The `explain.*` narration notes (frontier descriptions and friends).
    pub fn explains(&self) -> impl Iterator<Item = (&str, &str)> {
        self.notes
            .iter()
            .filter(|(name, _)| name.starts_with("explain."))
            .map(|(n, d)| (n.as_str(), d.as_str()))
    }
}

/// Pull a required field out of a JSONL line, with the line number in every
/// error message.
fn field<'a>(line: &'a Json, key: &str, lineno: usize) -> Result<&'a Json, TraceLoadError> {
    line.get(key)
        .ok_or_else(|| TraceLoadError::at(lineno, format!("missing field {key:?}")))
}

fn str_field(line: &Json, key: &str, lineno: usize) -> Result<String, TraceLoadError> {
    Ok(field(line, key, lineno)?
        .as_str()
        .ok_or_else(|| TraceLoadError::at(lineno, format!("field {key:?} is not a string")))?
        .to_string())
}

fn u64_field(line: &Json, key: &str, lineno: usize) -> Result<u64, TraceLoadError> {
    field(line, key, lineno)?
        .as_int()
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| {
            TraceLoadError::at(
                lineno,
                format!("field {key:?} is not a non-negative integer"),
            )
        })
}

fn u128_field(line: &Json, key: &str, lineno: usize) -> Result<u128, TraceLoadError> {
    field(line, key, lineno)?
        .as_int()
        .and_then(|i| u128::try_from(i).ok())
        .ok_or_else(|| {
            TraceLoadError::at(
                lineno,
                format!("field {key:?} is not a non-negative integer"),
            )
        })
}

/// Parse JSONL trace text into decision segments. Lines are routed to the
/// current segment; a `span_open` with parent 0 starts the next decision.
///
/// Any malformed line — including a record torn mid-write by a dying
/// producer — is a [`TraceLoadError`] naming that line, not a panic.
pub fn parse_trace(text: &str) -> Result<Vec<Segment>, TraceLoadError> {
    let mut segments: Vec<Segment> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let line = json::parse(raw).map_err(|e| TraceLoadError::at(lineno, e.to_string()))?;
        let kind = str_field(&line, "kind", lineno)?;
        match kind.as_str() {
            "span_open" => {
                let parent = u64_field(&line, "parent", lineno)?;
                if parent == 0 {
                    segments.push(Segment::default());
                }
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "span before any root decision span")
                })?;
                seg.tree
                    .open(
                        &str_field(&line, "name", lineno)?,
                        u64_field(&line, "id", lineno)?,
                        parent,
                        u64_field(&line, "at_tick", lineno)?,
                    )
                    .map_err(|e| TraceLoadError::at(lineno, e.to_string()))?;
            }
            "span" => {
                // Untraced span lines (no id) carry a duration but no tree
                // position — a traced decision stream never produces them.
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "span before any root decision span")
                })?;
                if line.get("id").is_none() {
                    return Err(TraceLoadError::at(
                        lineno,
                        "span without an id (untraced stream?) — \
                         ric-trace needs traces recorded with a TraceState attached",
                    ));
                }
                seg.tree
                    .close(
                        &str_field(&line, "name", lineno)?,
                        u64_field(&line, "id", lineno)?,
                        u128_field(&line, "micros", lineno)?,
                        u64_field(&line, "ticks", lineno)?,
                    )
                    .map_err(|e| TraceLoadError::at(lineno, e.to_string()))?;
            }
            "count" => {
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "counter before any root decision span")
                })?;
                let name = str_field(&line, "name", lineno)?;
                let delta = u64_field(&line, "delta", lineno)?;
                *seg.counters.entry(name).or_insert(0) += delta;
            }
            "gauge" => {
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "gauge before any root decision span")
                })?;
                let name = str_field(&line, "name", lineno)?;
                let value = u64_field(&line, "value", lineno)?;
                let slot = seg.gauges.entry(name).or_insert(0);
                *slot = (*slot).max(value);
            }
            "note" => {
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "note before any root decision span")
                })?;
                seg.notes.push((
                    str_field(&line, "name", lineno)?,
                    str_field(&line, "detail", lineno)?,
                ));
            }
            "interrupt" => {
                let seg = segments.last_mut().ok_or_else(|| {
                    TraceLoadError::at(lineno, "interrupt before any root decision span")
                })?;
                seg.interrupts.push((
                    str_field(&line, "name", lineno)?,
                    str_field(&line, "reason", lineno)?,
                ));
            }
            other => {
                return Err(TraceLoadError::at(
                    lineno,
                    format!("unknown event kind {other:?}"),
                ))
            }
        }
    }
    if segments.is_empty() {
        return Err(TraceLoadError::whole_file("no decision spans found"));
    }
    Ok(segments)
}

/// Read and parse a JSONL trace file. An unreadable file and an empty trace
/// both report as whole-file errors (line 0) naming the path.
pub fn load_trace(path: &str) -> Result<Vec<Segment>, TraceLoadError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TraceLoadError::whole_file(format!("could not read {path}: {e}")))?;
    parse_trace(&text).map_err(|e| {
        if e.line == 0 {
            TraceLoadError::whole_file(format!("{path}: {}", e.message))
        } else {
            e
        }
    })
}

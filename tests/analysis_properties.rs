//! Property suite for the static analyzer: downgrade equivalence and gated
//! dispatch.
//!
//! The analyzer's central promise is that a certified fragment downgrade is
//! *invisible* except in cost: the rewritten query computes exactly the same
//! answers as the original on every database, and the analysis-gated decision
//! entry points return the same verdicts the rewritten query would get from
//! direct dispatch — under every engine. This suite checks both properties on
//! randomized instances with fixed seeds (no external crates needed, so it
//! runs in the default offline `cargo test` pass).

use ric::analysis::{classify_query, random_database};
use ric::prelude::*;
use ric::query::{Atom, FoExpr, FoQuery, QueryLanguage};
use ric::{try_rcdp_analyzed, try_rcdp_analyzed_probed, try_rcqp_analyzed, SplitMix64};

/// Fixed two-relation schema: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

/// CQs with all-variable heads, exercising joins, constants, and `≠`.
fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(X) :- R(X, 3).",
        "Q() :- R(1, X), S(X).",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// Wrap a CQ in semantically equivalent FO syntax: existentially quantify the
/// non-head variables over the conjunction, double-negate every other atom,
/// and spell `≠` as negated equality. Exactly the "FO-syntax-but-CQ" shape
/// the analyzer is built to recognize.
fn wrap_cq_in_fo(cq: &Cq) -> FoQuery {
    let head: Vec<Var> = cq
        .head
        .iter()
        .map(|t| match t {
            Term::Var(v) => *v,
            Term::Const(_) => panic!("pool heads are variables"),
        })
        .collect();
    let bound: Vec<Var> = (0..cq.n_vars as usize)
        .map(|i| Var(i as u32))
        .filter(|v| !head.contains(v))
        .collect();
    let mut conjuncts = Vec::new();
    for (i, a) in cq.atoms.iter().enumerate() {
        let atom = FoExpr::Atom(a.clone());
        conjuncts.push(if i % 2 == 1 {
            FoExpr::not(FoExpr::not(atom))
        } else {
            atom
        });
    }
    for (l, r) in &cq.eqs {
        conjuncts.push(FoExpr::Eq(l.clone(), r.clone()));
    }
    for (l, r) in &cq.neqs {
        conjuncts.push(FoExpr::not(FoExpr::Eq(l.clone(), r.clone())));
    }
    let body = FoExpr::And(conjuncts);
    let body = if bound.is_empty() {
        body
    } else {
        FoExpr::Exists(bound, Box::new(body))
    };
    FoQuery::new(head, body, cq.var_names.clone())
}

/// Every pool query, FO-wrapped, downgrades to CQ with a certified witness,
/// and the witness evaluates identically to the original on randomized
/// databases (far more rounds than certification itself used).
#[test]
fn downgraded_queries_evaluate_identically() {
    let s = schema();
    let mut rng = SplitMix64::seed_from_u64(0xD0DE);
    for (qi, cq) in cq_pool().into_iter().enumerate() {
        let original = Query::Fo(wrap_cq_in_fo(&cq));
        let (cls, _) = classify_query(&s, &original, 0xBADD + qi as u64);
        assert_eq!(cls.declared, QueryLanguage::Fo, "query {qi}");
        assert_eq!(cls.minimal, QueryLanguage::Cq, "query {qi}");
        assert!(cls.certified, "query {qi} not certified");
        let rewritten = cls.rewritten.expect("certified downgrade has a witness");
        for round in 0..40 {
            let db = random_database(&s, &mut rng, 10, 6);
            assert_eq!(
                original.eval(&db).unwrap(),
                rewritten.eval(&db).unwrap(),
                "witness diverges (query {qi}, round {round})"
            );
        }
    }
}

/// Non-recursive output-only FP programs downgrade to UCQ and the witness is
/// evaluation-identical.
#[test]
fn downgraded_fp_evaluates_identically() {
    let s = schema();
    let p = ric::query::parse_program(
        &s,
        "Out(X) :- R(X, Y), S(Y). Out(X) :- S(X), X != 2.",
        "Out",
    )
    .unwrap();
    let original = Query::Fp(p);
    let (cls, _) = classify_query(&s, &original, 0xF9);
    assert_eq!(cls.minimal, QueryLanguage::Ucq);
    assert!(cls.certified);
    let rewritten = cls.rewritten.unwrap();
    let mut rng = SplitMix64::seed_from_u64(0xFEED);
    for round in 0..40 {
        let db = random_database(&s, &mut rng, 10, 6);
        assert_eq!(
            original.eval(&db).unwrap(),
            rewritten.eval(&db).unwrap(),
            "FP witness diverges (round {round})"
        );
    }
}

/// A random setting bounding `R`'s first column by master `M` and `S` by
/// master `N` (same shape as `engine_differential.rs`).
fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// The analyzed entry point must return the same verdict the certified
/// rewrite gets from direct dispatch — under `Engine::Indexed` and
/// `Engine::Parallel` — and both engines must agree with each other.
#[test]
fn analyzed_dispatch_matches_direct_dispatch_per_engine() {
    let s = schema();
    let engines = [
        ("indexed", Engine::Indexed),
        ("parallel", Engine::Parallel { workers: 4 }),
    ];
    let mut rng = SplitMix64::seed_from_u64(0xA9A9);
    let mut decided = 0usize;
    for round in 0..12 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let original = Query::Fo(wrap_cq_in_fo(&cq));
            let (cls, _) = classify_query(&s, &original, 0xC0 + qi as u64);
            let rewritten = cls.rewritten.expect("pool queries downgrade");
            let mut kinds = Vec::new();
            for (name, engine) in engines {
                let budget = SearchBudget::default().with_engine(engine);
                let via_gate = try_rcdp_analyzed(&setting, &original, &db, &budget).unwrap();
                let direct = rcdp(&setting, &rewritten, &db, &budget).unwrap();
                assert_eq!(
                    std::mem::discriminant(&via_gate),
                    std::mem::discriminant(&direct),
                    "gated vs direct dispatch diverge ({name}, round {round}, query {qi})"
                );
                if let Verdict::Incomplete(ce) = &via_gate {
                    assert!(
                        ric::complete::rcdp::certify_counterexample(&setting, &rewritten, &db, ce)
                            .unwrap(),
                        "uncertified counterexample ({name}, round {round}, query {qi})"
                    );
                }
                kinds.push(std::mem::discriminant(&via_gate));
            }
            assert_eq!(
                kinds[0], kinds[1],
                "engines diverge (round {round}, query {qi})"
            );
            decided += 1;
        }
    }
    assert!(
        decided >= 21,
        "too few partially closed instances generated"
    );
}

/// RCQP through the gate agrees with direct dispatch of the rewrite.
#[test]
fn analyzed_rcqp_matches_direct_dispatch() {
    let s = schema();
    let mut rng = SplitMix64::seed_from_u64(0xB00C);
    for round in 0..4 {
        let setting = random_setting(&mut rng);
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let original = Query::Fo(wrap_cq_in_fo(&cq));
            let (cls, _) = classify_query(&s, &original, 0xD0 + qi as u64);
            let rewritten = cls.rewritten.expect("pool queries downgrade");
            let budget = SearchBudget::default();
            let via_gate = try_rcqp_analyzed(&setting, &original, &budget).unwrap();
            let direct = rcqp(&setting, &rewritten, &budget).unwrap();
            assert_eq!(
                std::mem::discriminant(&via_gate),
                std::mem::discriminant(&direct),
                "RCQP gated vs direct diverge (round {round}, query {qi})"
            );
        }
    }
}

/// The gate's telemetry: `analysis.downgrade` counts applied downgrades and
/// the JSON report rides along as a note.
#[test]
fn gate_emits_downgrade_counter_and_report_note() {
    let mut rng = SplitMix64::seed_from_u64(0x70AD);
    let setting = random_setting(&mut rng);
    let db = Database::empty(&setting.schema);
    let original = Query::Fo(wrap_cq_in_fo(&cq_pool().remove(0)));
    let collector = Collector::new();
    try_rcdp_analyzed_probed(
        &setting,
        &original,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector),
    )
    .unwrap();
    let report = collector.report();
    assert_eq!(report.counter("analysis.downgrade"), 1);
    let note = report
        .notes
        .get("analysis.report")
        .map(|texts| texts.join(""))
        .expect("analysis.report note missing");
    assert!(
        note.contains("\"downgrades\""),
        "note is not the JSON report"
    );
}

/// Error-level settings are rejected before any search, with the offending
/// diagnostics attached and an `analysis.rejected` counter.
#[test]
fn error_settings_are_rejected_with_typed_report() {
    let mut rng = SplitMix64::seed_from_u64(0x7EC7);
    let setting = random_setting(&mut rng);
    let db = Database::empty(&setting.schema);
    let r = setting.schema.rel_id("R").unwrap();
    // Unsafe FO: y is neither free nor quantified.
    let broken = Query::Fo(FoQuery::new(
        vec![Var(0)],
        FoExpr::Atom(Atom::new(r, vec![Term::Var(Var(0)), Term::Var(Var(1))])),
        vec!["x".into(), "y".into()],
    ));
    let collector = Collector::new();
    let err = try_rcdp_analyzed_probed(
        &setting,
        &broken,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector),
    )
    .unwrap_err();
    match err {
        DecisionError::Rejected(report) => {
            assert!(report.has_errors());
            assert!(report
                .errors()
                .any(|d| d.code == ric::Code::FoUnsafeVariable));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(collector.report().counter("analysis.rejected"), 1);
    // RCQP takes the same gate.
    let err = try_rcqp_analyzed(&setting, &broken, &SearchBudget::default()).unwrap_err();
    assert!(matches!(err, DecisionError::Rejected(_)));
}

/// Queries the analyzer cannot shrink pass through the gate untouched.
#[test]
fn genuine_fo_passes_the_gate_undowngraded() {
    let mut rng = SplitMix64::seed_from_u64(0x90D1);
    let setting = random_setting(&mut rng);
    let db = Database::empty(&setting.schema);
    let srel = setting.schema.rel_id("S").unwrap();
    // Q() := ¬∃x S(x) — genuine negation, stays FO.
    let q = Query::Fo(FoQuery::new(
        vec![],
        FoExpr::not(FoExpr::Exists(
            vec![Var(0)],
            Box::new(FoExpr::Atom(Atom::new(srel, vec![Term::Var(Var(0))]))),
        )),
        vec!["x".into()],
    ));
    let collector = Collector::new();
    let gated = try_rcdp_analyzed_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::small(),
        Probe::attached(&collector),
    )
    .unwrap();
    let direct = rcdp(&setting, &q, &db, &SearchBudget::small()).unwrap();
    assert_eq!(
        std::mem::discriminant(&gated.verdict),
        std::mem::discriminant(&direct)
    );
    assert_eq!(collector.report().counter("analysis.downgrade"), 0);
}

//! Differential testing of the symbolic pre-decision prover: a
//! [`ReasonedSetting`] — minimized `V`, cap-clamped statistics, and static
//! verdict short-circuits — must agree with the plain prepared paths on
//! every input, at every engine.
//!
//! The reasoner's contract is *certified-rewrites-only*: every dropped
//! constraint and every static verdict passes a seeded differential battery
//! before it may influence a decision, and an uncertified conclusion is
//! discarded with a typed note. This suite pins the surviving conclusions
//! end to end:
//!
//! * RCDP verdicts and witnesses identical to the full-`V` prepared path
//!   across Indexed / Planned / Parallel engines, worker counts from
//!   `RIC_WORKERS`, and ≥24 seeded rounds;
//! * when no static short-circuit fires, the deterministic search counters
//!   (`rcdp.valuations`, `rcdp.cc_checks`) are bit-identical — minimization
//!   drops *checks of implied constraints*, not candidates, and the
//!   candidate pool is protected by the constants-preservation guard
//!   (per-constraint attribution counters like `prune.cc.N` legitimately
//!   shift and are excluded, see DESIGN §13);
//! * a certified static verdict short-circuits to exactly the verdict the
//!   full search returns;
//! * a deliberately wrong implication is provably discarded by the
//!   certification battery and never reaches a decision;
//! * non-partially-closed inputs are rejected identically on both paths.

use ric::prelude::*;
use ric::reason::{apply_candidates, certify_kept_mask, REASON_SEED};
use ric::{try_rcdp_prepared_probed, try_rcdp_static_probed, ReasonedSetting, SplitMix64};

/// Fixed two-relation schema: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn master_schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap()
}

fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// A setting whose `V` carries *redundant* constraints on purpose: the IND
/// `π_0(S) ⊆ N` implies the CQ form `q(y) :- S(y) ⊆ N`, and the join
/// constraint `q(x) :- R(x,y), S(y) ⊆ M` implies its widened three-atom
/// variant. The reasoner should drop the implied half and decide on the
/// kept half alone.
fn redundant_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.8) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.8) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let join = parse_cq(&s, "Q(X) :- R(X, Y), S(Y).").unwrap();
    let wide = parse_cq(&s, "Q(X) :- R(X, Y), S(Y), R(X, Z).").unwrap();
    let s_cq = parse_cq(&s, "Q(Y) :- S(Y).").unwrap();
    let mut ccs = vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(CcBody::Cq(join), mrel, vec![0]),
    ];
    if rng.random_bool(0.7) {
        // Implied by the IND (Rule B with identical right-hand sides).
        ccs.push(ContainmentConstraint::into_master(
            CcBody::Cq(s_cq),
            nrel,
            vec![0],
        ));
    }
    if rng.random_bool(0.7) {
        // Implied by the join constraint (its body is contained in it).
        ccs.push(ContainmentConstraint::into_master(
            CcBody::Cq(wide),
            mrel,
            vec![0],
        ));
    }
    Setting::new(s, m, dm, ConstraintSet::new(ccs))
}

fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(Y) :- S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

fn worker_counts() -> Vec<usize> {
    match std::env::var("RIC_WORKERS") {
        Ok(spec) => spec
            .split(',')
            .map(|w| w.trim().parse().expect("RIC_WORKERS must be integers"))
            .collect(),
        Err(_) => vec![1, 4],
    }
}

fn engines() -> Vec<Engine> {
    let mut out = vec![Engine::Indexed];
    for w in worker_counts() {
        out.push(Engine::Parallel { workers: w });
        out.push(Engine::planned(w));
    }
    out
}

/// Counters invariant under V-minimization: the candidate stream and the
/// number of per-candidate checks are preserved (one `cc_checks` tick per
/// candidate, regardless of how many constraints each check evaluates).
const DETERMINISTIC_COUNTERS: [&str; 2] = ["rcdp.valuations", "rcdp.cc_checks"];

struct Arm {
    verdict: Verdict,
    counters: Vec<(&'static str, u64)>,
    static_hits: u64,
}

fn full_arm(setting: &Setting, q: &Query, db: &Database, budget: &SearchBudget) -> Arm {
    let collector = Collector::new();
    let prepared = ric::prepare(setting, db, budget.engine).unwrap();
    let d =
        try_rcdp_prepared_probed(&prepared, q, db, budget, Probe::attached(&collector)).unwrap();
    let report = collector.report();
    Arm {
        verdict: d.verdict,
        counters: DETERMINISTIC_COUNTERS
            .iter()
            .map(|&n| (n, report.counter(n)))
            .collect(),
        static_hits: 0,
    }
}

fn reasoned_arm(setting: &Setting, q: &Query, db: &Database, budget: &SearchBudget) -> Arm {
    let collector = Collector::new();
    let reasoned = ReasonedSetting::prepare(setting, q, db, budget.engine, budget).unwrap();
    let d = try_rcdp_static_probed(&reasoned, db, budget, Probe::attached(&collector)).unwrap();
    let report = collector.report();
    Arm {
        verdict: d.verdict,
        counters: DETERMINISTIC_COUNTERS
            .iter()
            .map(|&n| (n, report.counter(n)))
            .collect(),
        static_hits: report.counter("reason.static_verdict") + report.counter("reason.cover_hit"),
    }
}

/// Reasoned ≡ prepared-full-V: verdicts, witnesses, and (when no static
/// shortcut fires) deterministic counters, across all engines and ≥24
/// seeded rounds.
#[test]
fn reasoned_decisions_match_prepared_full_v() {
    let mut rng = SplitMix64::seed_from_u64(0x5EA5_0D1F);
    let mut decided = 0usize;
    for round in 0..26 {
        let setting = redundant_setting(&mut rng);
        let db = random_db(&mut rng, 5, 6, 4);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            for engine in engines() {
                let budget = SearchBudget::default().with_engine(engine);
                let full = full_arm(&setting, &q, &db, &budget);
                let reasoned = reasoned_arm(&setting, &q, &db, &budget);
                match (&full.verdict, &reasoned.verdict) {
                    (Verdict::Complete, Verdict::Complete) => {}
                    (Verdict::Incomplete(a), Verdict::Incomplete(b)) => {
                        assert_eq!(
                            (&a.delta, &a.new_answer),
                            (&b.delta, &b.new_answer),
                            "reasoned witness differs (round {round}, query {qi}, {engine:?})"
                        );
                        assert!(
                            ric::complete::rcdp::certify_counterexample(&setting, &q, &db, b)
                                .unwrap(),
                            "uncertified reasoned counterexample \
                             (round {round}, query {qi}, {engine:?})"
                        );
                    }
                    (Verdict::Unknown { .. }, Verdict::Unknown { .. }) => {}
                    other => panic!(
                        "reasoned and full-V verdicts disagree \
                         (round {round}, query {qi}, {engine:?}): {other:?}"
                    ),
                }
                if reasoned.static_hits == 0 {
                    assert_eq!(
                        full.counters, reasoned.counters,
                        "deterministic counters diverge without a static shortcut \
                         (round {round}, query {qi}, {engine:?})"
                    );
                }
            }
            decided += 1;
        }
    }
    assert!(
        decided >= 24,
        "too few partially closed instances generated ({decided})"
    );
}

/// A setting whose denial statically kills the query: the reasoned path
/// must short-circuit to `Complete` — the same verdict the full search
/// grinds out — and record the shortcut in telemetry.
#[test]
fn static_complete_short_circuit_agrees_with_full_search() {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let m = master_schema();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..8 {
        dm.insert(nrel, Tuple::new([Value::int(v)]));
    }
    // R is denied outright; S is IND-bounded (and irrelevant to Q).
    let denial = parse_cq(&s, "Q() :- R(X, Y).").unwrap();
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_empty(CcBody::Cq(denial)),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(s.rel_id("S").unwrap(), vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    let setting = Setting::new(s.clone(), m, dm, v);
    let q: Query = parse_cq(&s, "Q(X) :- R(X, Y).").unwrap().into();
    let mut db = Database::empty(&s);
    db.insert(s.rel_id("S").unwrap(), Tuple::new([Value::int(1)]));
    assert!(setting.partially_closed(&db).unwrap());
    for engine in engines() {
        let budget = SearchBudget::default().with_engine(engine);
        let full = rcdp(&setting, &q, &db, &budget).unwrap();
        let reasoned = reasoned_arm(&setting, &q, &db, &budget);
        assert_eq!(full, Verdict::Complete, "{engine:?}");
        assert_eq!(reasoned.verdict, Verdict::Complete, "{engine:?}");
        assert!(
            reasoned.static_hits > 0,
            "the static shortcut should have fired ({engine:?})"
        );
        // The short-circuit really did skip the search.
        assert_eq!(
            reasoned.counters,
            vec![("rcdp.valuations", 0), ("rcdp.cc_checks", 0)]
        );
    }
    // Same input contract: a non-partially-closed database is rejected on
    // both paths, never silently decided by a static fact.
    db.insert(r, Tuple::new([Value::int(1), Value::int(2)]));
    assert!(!setting.partially_closed(&db).unwrap());
    let budget = SearchBudget::default();
    let reasoned = ReasonedSetting::prepare(&setting, &q, &db, budget.engine, &budget).unwrap();
    assert!(matches!(
        ric::try_rcdp_static(&reasoned, &db, &budget),
        Err(ric::DecisionError::Rc(RcError::NotPartiallyClosed))
    ));
    assert!(matches!(
        rcdp(&setting, &q, &db, &budget),
        Err(RcError::NotPartiallyClosed)
    ));
}

/// A deliberately wrong implication — claiming the only load-bearing
/// constraint is implied by nothing — must be discarded by the
/// certification battery, leave a typed note, and never change a decision.
#[test]
fn wrong_implication_is_discarded_and_never_decides() {
    let s = schema();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    dm.insert(nrel, Tuple::new([Value::int(1)]));
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(srel, vec![0])),
        nrel,
        vec![0],
    )]);
    let setting = Setting::new(s.clone(), m, dm, v);
    // The wrong candidate is rejected: the constraint stays, with a note.
    let min = apply_candidates(&setting, &[0], REASON_SEED);
    assert_eq!(min.kept, vec![true]);
    assert!(min.implied.is_empty());
    assert!(min.notes.iter().any(ric::ReasonNote::is_uncertified));
    // And the underlying battery itself refuses the mask.
    assert!(certify_kept_mask(&setting, &[false], REASON_SEED).is_err());
    // End to end: decisions through the reasoner match the plain path (the
    // reasoner found nothing sound to drop here).
    let q: Query = parse_cq(&s, "Q(Y) :- S(Y).").unwrap().into();
    let mut db = Database::empty(&s);
    db.insert(srel, Tuple::new([Value::int(1)]));
    let budget = SearchBudget::default();
    let reasoned = ReasonedSetting::prepare(&setting, &q, &db, budget.engine, &budget).unwrap();
    assert!(reasoned.facts().kept.iter().all(|k| *k));
    let vs = ric::try_rcdp_static(&reasoned, &db, &budget).unwrap();
    let vf = rcdp(&setting, &q, &db, &budget).unwrap();
    assert_eq!(vs, vf);
}

/// RCQP through the reasoned preparation agrees in kind with the plain
/// decider on the same (minimization-bearing) settings.
#[test]
fn reasoned_rcqp_kinds_agree() {
    let mut rng = SplitMix64::seed_from_u64(0x9C0F);
    for round in 0..6 {
        let setting = redundant_setting(&mut rng);
        let stats = Database::empty(&setting.schema);
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let budget = SearchBudget::default();
            let vi = rcqp(&setting, &q, &budget).unwrap();
            let reasoned =
                ReasonedSetting::prepare(&setting, &q, &stats, budget.engine, &budget).unwrap();
            let vr = ric::try_rcqp_static(&reasoned, &budget).unwrap();
            assert_eq!(
                std::mem::discriminant(&vi),
                std::mem::discriminant(&vr),
                "RCQP diverges (round {round}, query {qi}): {vi:?} vs {vr:?}"
            );
        }
    }
}

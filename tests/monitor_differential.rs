//! Differential testing of the streaming monitor: after **every**
//! transaction in a randomized K-txn stream, each registered setting's
//! incremental verdict must equal a from-scratch prepared decision on the
//! materialized database.
//!
//! This pins every fast path the [`Monitor`] takes — footprint skips,
//! net-change coalescing, incremental partial closure, Complete
//! monotonicity, counterexample re-certification, fingerprint memoization,
//! frontier resumption — to the ground truth it is supposed to shortcut.
//! Equality means:
//!
//! * `NotPartiallyClosed` on the monitor ⇔ the from-scratch decision
//!   rejects the input with [`RcError::NotPartiallyClosed`];
//! * `Complete`/`Unknown` agree by kind (budgets are ample and identical,
//!   so `Unknown` only arises deterministically, if at all);
//! * `Incomplete` agrees by kind and **both** counterexamples certify
//!   against the current state (the `engine_differential.rs` precedent:
//!   witnesses are engine-dependent, certification is not).
//!
//! The matrix crosses engines (`Indexed`, `Planned`, `Parallel`) with the
//! `RIC_WORKERS` (default 2) and `RIC_TXN_BATCH` (default both 1 and 8)
//! environment knobs the CI harness sweeps. Every case fixes its seed, so a
//! failure reproduces exactly.

use ric::complete::rcdp::certify_counterexample;
use ric::prelude::*;
use ric::{Monitor, Op, SettingId, SettingVerdict, Txn};
use ric::{RcError, SplitMix64};

fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn master_schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("M", &["b"]),
        RelationSchema::infinite("W", &["a"]),
    ])
    .unwrap()
}

fn t(vs: &[i64]) -> Tuple {
    Tuple::new(vs.iter().map(|&v| Value::int(v)))
}

/// Initial master data: `M = {0, 1, 2}`, `W = {0, 1, 2, 3}`.
fn dm() -> Database {
    let ms = master_schema();
    let m = ms.rel_id("M").unwrap();
    let w = ms.rel_id("W").unwrap();
    let mut dm = Database::empty(&ms);
    for b in 0..3 {
        dm.insert(m, t(&[b]));
    }
    for a in 0..4 {
        dm.insert(w, t(&[a]));
    }
    dm
}

/// The registered settings: `(name, V, Q)` triples spanning upper bounds on
/// both relations, a join query reaching outside the constrained relation,
/// and a Section 5 lower bound.
fn settings() -> Vec<(&'static str, ConstraintSet, Query)> {
    let s = schema();
    let ms = master_schema();
    let m = ms.rel_id("M").unwrap();
    let w = ms.rel_id("W").unwrap();
    let r_proj = || CcBody::Cq(parse_cq(&s, "Q(B) :- R(A, B).").unwrap());
    let s_proj = || CcBody::Cq(parse_cq(&s, "Q(A) :- S(A).").unwrap());
    let both = || {
        ConstraintSet::new(vec![
            ContainmentConstraint::into_master(r_proj(), m, vec![0]),
            ContainmentConstraint::into_master(s_proj(), w, vec![0]),
        ])
    };
    let mut with_lower = both();
    with_lower.push_lower_bound(LowerBound {
        master: Projection::new(m, vec![0]),
        body: r_proj(),
    });
    vec![
        (
            "crm",
            ConstraintSet::new(vec![ContainmentConstraint::into_master(
                r_proj(),
                m,
                vec![0],
            )]),
            Query::Cq(parse_cq(&s, "Q(B) :- R(A, B).").unwrap()),
        ),
        (
            "join",
            both(),
            Query::Cq(parse_cq(&s, "Q(X) :- R(X, Y), S(Y).").unwrap()),
        ),
        (
            "s-watch",
            ConstraintSet::new(vec![ContainmentConstraint::into_master(
                s_proj(),
                w,
                vec![0],
            )]),
            Query::Cq(parse_cq(&s, "Q(A) :- S(A).").unwrap()),
        ),
        (
            "covering",
            with_lower,
            Query::Cq(parse_cq(&s, "Q(B) :- R(A, B).").unwrap()),
        ),
    ]
}

/// A random transaction: `batch` ops over `R`, `S`, and (rarely) master
/// `M`, mixing inserts with deletes of plausibly present tuples.
fn random_txn(rng: &mut SplitMix64, batch: usize) -> Txn {
    let s = schema();
    let ms = master_schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = ms.rel_id("M").unwrap();
    let mut ops = Vec::with_capacity(batch);
    for _ in 0..batch {
        let a = rng.random_range(0..5) as i64;
        let b = rng.random_range(0..4) as i64;
        match rng.random_range(0..12) {
            0..=4 => ops.push(Op::insert(r, t(&[a, b]))),
            5..=6 => ops.push(Op::insert(srel, t(&[a]))),
            7..=8 => ops.push(Op::delete(r, t(&[a, b]))),
            9 => ops.push(Op::delete(srel, t(&[a]))),
            10 => ops.push(Op::master_insert(m, t(&[b]))),
            _ => ops.push(Op::master_delete(m, t(&[3]))),
        }
    }
    Txn::new(ops)
}

/// From-scratch ground truth for one setting on the monitor's materialized
/// state: build the setting fresh from the *current* master data, prepare,
/// decide.
fn ground_truth(
    v: &ConstraintSet,
    query: &Query,
    db: &Database,
    dm: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, RcError> {
    let setting = Setting::new(schema(), master_schema(), dm.clone(), v.clone());
    let prepared = prepare(&setting, db, budget.engine)?;
    try_rcdp_prepared(&prepared, query, db, budget).map_err(|e| match e {
        DecisionError::Rc(e) => e,
        other => panic!("decision must not panic: {other:?}"),
    })
}

/// Assert one monitored verdict equals the from-scratch one.
#[allow(clippy::too_many_arguments)]
fn assert_matches_ground_truth(
    name: &str,
    monitored: &SettingVerdict,
    v: &ConstraintSet,
    query: &Query,
    db: &Database,
    dm: &Database,
    budget: &SearchBudget,
    ctx: &str,
) {
    let fresh = ground_truth(v, query, db, dm, budget);
    match (monitored, fresh) {
        (SettingVerdict::NotPartiallyClosed, Err(RcError::NotPartiallyClosed)) => {}
        (SettingVerdict::Decided(inc), Ok(fresh)) => match (inc, &fresh) {
            (Verdict::Complete, Verdict::Complete) => {}
            (Verdict::Unknown { stats: a }, Verdict::Unknown { stats: b }) => {
                assert_eq!(a.limit, b.limit, "[{name}] {ctx}: Unknown limits differ");
            }
            (Verdict::Incomplete(ce_inc), Verdict::Incomplete(ce_fresh)) => {
                let setting = Setting::new(schema(), master_schema(), dm.clone(), v.clone());
                assert!(
                    certify_counterexample(&setting, query, db, ce_inc).unwrap_or(false),
                    "[{name}] {ctx}: incremental counterexample fails to certify"
                );
                assert!(
                    certify_counterexample(&setting, query, db, ce_fresh).unwrap_or(false),
                    "[{name}] {ctx}: fresh counterexample fails to certify"
                );
            }
            (a, b) => panic!("[{name}] {ctx}: incremental {a:?} vs fresh {b:?}"),
        },
        (mon, fresh) => panic!("[{name}] {ctx}: incremental {mon:?} vs fresh {fresh:?}"),
    }
}

fn workers() -> usize {
    std::env::var("RIC_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(2)
}

fn batches() -> Vec<usize> {
    match std::env::var("RIC_TXN_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(b) if b >= 1 => vec![b],
        _ => vec![1, 8],
    }
}

/// Drive one seeded stream under one engine, checking every setting against
/// ground truth after every transaction.
fn run_stream(engine: Engine, seed: u64, txns: usize, batch: usize) {
    let budget = SearchBudget {
        engine,
        ..SearchBudget::default()
    };
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut mon = Monitor::new(schema(), master_schema(), dm(), budget).unwrap();
    let defs = settings();
    let ids: Vec<SettingId> = defs
        .iter()
        .map(|(name, v, q)| mon.register(*name, v.clone(), q.clone()).unwrap())
        .collect();

    // Registration itself must already agree.
    for (id, (name, v, q)) in ids.iter().zip(&defs) {
        assert_matches_ground_truth(
            name,
            mon.verdict(*id).unwrap(),
            v,
            q,
            mon.db(),
            mon.dm(),
            &budget,
            "at registration",
        );
    }

    for k in 0..txns {
        let txn = random_txn(&mut rng, batch);
        mon.apply(&txn).unwrap();
        for (id, (name, v, q)) in ids.iter().zip(&defs) {
            let ctx = format!("seed {seed:#x}, txn {k}, batch {batch}, engine {engine}");
            assert_matches_ground_truth(
                name,
                mon.verdict(*id).unwrap(),
                v,
                q,
                mon.db(),
                mon.dm(),
                &budget,
                &ctx,
            );
        }
    }
}

#[test]
fn indexed_stream_matches_from_scratch() {
    for (i, seed) in [0xA11CE, 0xB0B, 0xD1FF].into_iter().enumerate() {
        for &batch in &batches() {
            run_stream(Engine::Indexed, seed + i as u64, 18, batch);
        }
    }
}

#[test]
fn planned_stream_matches_from_scratch() {
    let w = workers();
    for &batch in &batches() {
        run_stream(Engine::planned(w), 0x91A, 18, batch);
    }
}

#[test]
fn parallel_stream_matches_from_scratch() {
    let w = workers();
    for &batch in &batches() {
        run_stream(Engine::parallel(w), 0xFA9, 18, batch);
    }
}

/// Verdict identity is also preserved when one stream is applied through a
/// monitor and the same net state is loaded in one shot into a second
/// monitor: path independence of the final verdicts.
#[test]
fn final_verdicts_are_path_independent() {
    let budget = SearchBudget::default();
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    let mut streamed = Monitor::new(schema(), master_schema(), dm(), budget).unwrap();
    let defs = settings();
    for (name, v, q) in &defs {
        streamed.register(*name, v.clone(), q.clone()).unwrap();
    }
    for _ in 0..25 {
        let txn = random_txn(&mut rng, 3);
        streamed.apply(&txn).unwrap();
    }

    // Load the exact final state into a fresh monitor in one transaction.
    let mut oneshot = Monitor::new(schema(), master_schema(), dm(), budget).unwrap();
    let ids: Vec<SettingId> = defs
        .iter()
        .map(|(name, v, q)| oneshot.register(*name, v.clone(), q.clone()).unwrap())
        .collect();
    let mut ops = Vec::new();
    for (rel, inst) in streamed.db().iter() {
        for tup in inst.iter() {
            ops.push(Op::insert(rel, tup.clone()));
        }
    }
    let initial = dm();
    for (rel, inst) in streamed.dm().iter() {
        for tup in inst.iter() {
            if !initial.instance(rel).contains(tup) {
                ops.push(Op::master_insert(rel, tup.clone()));
            }
        }
        for tup in initial.instance(rel).iter() {
            if !inst.contains(tup) {
                ops.push(Op::master_delete(rel, tup.clone()));
            }
        }
    }
    oneshot.apply(&Txn::new(ops)).unwrap();

    assert_eq!(oneshot.db(), streamed.db());
    assert_eq!(oneshot.dm(), streamed.dm());
    for (id, (name, _, _)) in ids.iter().zip(&defs) {
        assert_eq!(
            oneshot.verdict(*id).unwrap().status(),
            streamed.verdict(*id).unwrap().status(),
            "[{name}] streamed vs one-shot status"
        );
    }
}

//! The paper's theorems as executable metamorphic properties.
//!
//! Four families, all driven by the in-tree deterministic [`SplitMix64`]
//! generator (no external property-testing crates — the build is offline):
//!
//! * **Monotone completeness.** If `D` is complete for `Q` relative to
//!   `(D_m, V)` and `D ∪ Δ` is still partially closed, then `D ∪ Δ` is
//!   complete too: any refuting extension of the larger database extends the
//!   smaller one as well. Adding entailed tuples must therefore never flip a
//!   `Complete` verdict to `Incomplete`.
//! * **C1–C4** (Proposition 3.3, Corollaries 3.4 and 3.5). The RCDP decider,
//!   through the [`characterize`] predicates — CQ (C1/C2), IND constraint
//!   sets (C3), UCQ (C4) — agrees with the doubly-exponential brute-force
//!   reference on tiny instances, under the sequential *and* the parallel
//!   engine.
//! * **RCQP witnesses.** A `Nonempty` answer carrying a witness database
//!   must hand back something checkable: the witness is partially closed and
//!   RCDP certifies it `Complete`.
//! * **Proposition 2.1.** Compiling FDs, CFDs, denial constraints, and INDs
//!   into containment constraints preserves (a) per-database satisfaction
//!   and (b) RCDP verdicts: a counterexample found under the compiled
//!   setting is classically consistent yet changes the answer, and when the
//!   decider says `Complete`, brute-force search with the *classical*
//!   predicates finds no refutation either.
//!
//! [`characterize`]: ric::complete::characterize

use ric::complete::characterize::{
    bounded_database_cq, bounded_database_ind, bounded_database_ucq, brute_force_complete,
};
use ric::complete::rcdp::certify_counterexample;
use ric::constraints::classical::at_most_k_per_key;
use ric::constraints::compile::{cfd_to_ccs, denial_to_cc, fd_to_ccs, ind_to_cc};
use ric::prelude::*;
use ric::SplitMix64;

/// Fixed two-relation schema for the generators: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

/// The master schema used by every setting here: `M(a)`, `N(a)`.
fn master_schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap()
}

/// A random database over `schema()` with values drawn from `0..vals`.
fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// A random master database over `master_schema()` with values in `0..vals`.
fn random_masters(rng: &mut SplitMix64, vals: i64) -> Database {
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..vals {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    dm
}

/// An IND-only setting: `R[0] ⊆ M`, `S[0] ⊆ N`, with random master data
/// over `0..vals`. `V` is a set of INDs, so C3 applies.
fn ind_setting(rng: &mut SplitMix64, vals: i64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let dm = random_masters(rng, vals);
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

/// CQs exercising joins, constants, self-joins, and inequalities.
fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(X) :- R(X, 3).",
        "Q() :- R(1, X), S(X).",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// Constant-light CQs whose active domain stays tiny — small enough for the
/// doubly-exponential brute-force reference.
fn tiny_cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q() :- R(0, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// The largest database the INDs of [`ind_setting`] permit over a small
/// co-domain: `R = M × {0, 1}`, `S = N`.
fn saturated_db(setting: &Setting) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut db = Database::empty(&s);
    for t in setting.dm.instance(mrel).iter() {
        for b in 0..2 {
            db.insert(r, Tuple::new([t.get(0).clone(), Value::int(b)]));
        }
    }
    for t in setting.dm.instance(nrel).iter() {
        db.insert(srel, Tuple::new([t.get(0).clone()]));
    }
    db
}

/// Random tuples the INDs of [`ind_setting`] entail are harmless: `R` first
/// columns come from master `M`, `S` values from master `N`, the free `R`
/// column from `0..8`. `None` when the masters are empty.
fn entailed_delta(rng: &mut SplitMix64, setting: &Setting) -> Option<Database> {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let m_vals: Vec<Value> = setting
        .dm
        .instance(mrel)
        .iter()
        .map(|t| t.get(0).clone())
        .collect();
    let n_vals: Vec<Value> = setting
        .dm
        .instance(nrel)
        .iter()
        .map(|t| t.get(0).clone())
        .collect();
    if m_vals.is_empty() && n_vals.is_empty() {
        return None;
    }
    let mut delta = Database::empty(&s);
    if !m_vals.is_empty() {
        for _ in 0..rng.random_range(1..4) {
            let a = m_vals[rng.random_range(0..m_vals.len())].clone();
            let b = Value::int(rng.random_range(0..8) as i64);
            delta.insert(r, Tuple::new([a, b]));
        }
    }
    if !n_vals.is_empty() {
        for _ in 0..rng.random_range(0..3) {
            let a = n_vals[rng.random_range(0..n_vals.len())].clone();
            delta.insert(srel, Tuple::new([a]));
        }
    }
    Some(delta)
}

/// Metamorphic monotonicity: growing a complete database by tuples that keep
/// it partially closed can never make it incomplete — a counterexample for
/// the grown database would extend the original one too.
#[test]
fn adding_entailed_tuples_never_flips_complete_to_incomplete() {
    let mut rng = SplitMix64::seed_from_u64(0xA11CE);
    let budget = SearchBudget::default();
    let mut grown = 0usize;
    for round in 0..150 {
        let setting = ind_setting(&mut rng, 5);
        // Alternate random databases with master-saturated ones (every
        // `R`/`S` tuple the INDs permit over a tiny co-domain), which are
        // complete much more often.
        let db = if round % 2 == 0 {
            random_db(&mut rng, 5, 4, 3)
        } else {
            saturated_db(&setting)
        };
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for cq in cq_pool() {
            let q: Query = cq.into();
            if rcdp(&setting, &q, &db, &budget).unwrap() != Verdict::Complete {
                continue;
            }
            // Δ: tuples whose constrained columns are drawn from the master
            // data, so the setting entails the union stays partially closed.
            let Some(delta) = entailed_delta(&mut rng, &setting) else {
                continue;
            };
            let bigger = db.union(&delta).unwrap();
            assert!(setting.partially_closed(&bigger).unwrap());
            // Since db is complete and bigger is a valid extension, the
            // answer cannot have changed...
            assert_eq!(q.eval(&bigger).unwrap(), q.eval(&db).unwrap());
            // ...and completeness itself must be preserved.
            let v2 = rcdp(&setting, &q, &bigger, &budget).unwrap();
            assert!(
                !matches!(v2, Verdict::Incomplete(_)),
                "adding entailed tuples flipped Complete to Incomplete:\n\
                 db = {db}\nbigger = {bigger}\nverdict = {v2}"
            );
            grown += 1;
        }
    }
    assert!(grown >= 20, "only {grown} grown instances exercised");
}

/// C1–C4: the decider (sequential and parallel) agrees with the brute-force
/// reference wherever the reference is feasible.
#[test]
fn characterizations_agree_with_brute_force_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xC1C4);
    let budget = SearchBudget::default();
    let par = SearchBudget::default().with_engine(Engine::parallel(3));
    let s = schema();
    let mut compared = 0usize;
    let mut complete_seen = 0usize;
    let mut incomplete_seen = 0usize;
    for _ in 0..25 {
        // Domain {0, 1} keeps the candidate pool within brute-force reach.
        let setting = ind_setting(&mut rng, 2);
        let db = random_db(&mut rng, 2, 3, 2);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for cq in tiny_cq_pool() {
            let query = Query::Cq(cq.clone());
            let Some(expected) = brute_force_complete(&setting, &query, &db, 1, 12).unwrap() else {
                continue;
            };
            // C1/C2 (CQ), C3 (V is a set of INDs), and the parallel engine
            // must all reproduce the reference bit.
            assert_eq!(
                bounded_database_cq(&setting, &cq, &db, &budget).unwrap(),
                Some(expected),
                "C1/C2 disagree with brute force on {db}"
            );
            assert_eq!(
                bounded_database_ind(&setting, &cq, &db, &budget).unwrap(),
                Some(expected),
                "C3 disagrees with brute force on {db}"
            );
            assert_eq!(
                bounded_database_cq(&setting, &cq, &db, &par).unwrap(),
                Some(expected),
                "parallel C1/C2 disagree with brute force on {db}"
            );
            compared += 1;
            if expected {
                complete_seen += 1;
            } else {
                incomplete_seen += 1;
            }
        }
        // C4: a genuinely disjunctive UCQ.
        let u = parse_ucq(&s, "Q(X) :- R(X, Y). Q(X) :- S(X).").unwrap();
        let query = Query::Ucq(u.clone());
        if let Some(expected) = brute_force_complete(&setting, &query, &db, 1, 12).unwrap() {
            assert_eq!(
                bounded_database_ucq(&setting, &u, &db, &budget).unwrap(),
                Some(expected),
                "C4 disagrees with brute force on {db}"
            );
            assert_eq!(
                bounded_database_ucq(&setting, &u, &db, &par).unwrap(),
                Some(expected),
                "parallel C4 disagrees with brute force on {db}"
            );
            compared += 1;
        }
    }
    assert!(compared >= 20, "only {compared} instances compared");
    assert!(
        complete_seen >= 3 && incomplete_seen >= 3,
        "verdict mix too lopsided: {complete_seen} complete, {incomplete_seen} incomplete"
    );
}

/// RCQP "yes" instances must come with a checkable certificate: the witness
/// is partially closed and RCDP declares it complete.
#[test]
fn rcqp_yes_instances_admit_a_checkable_witness() {
    let mut rng = SplitMix64::seed_from_u64(0x9C9);
    let budget = SearchBudget::default();
    let mut witnessed = 0usize;
    for _ in 0..30 {
        let setting = ind_setting(&mut rng, 5);
        for cq in cq_pool() {
            let q: Query = cq.into();
            if let QueryVerdict::Nonempty { witness: Some(w) } =
                rcqp(&setting, &q, &budget).unwrap()
            {
                assert!(
                    setting.partially_closed(&w).unwrap(),
                    "witness is not partially closed: {w}"
                );
                assert_eq!(
                    rcdp(&setting, &q, &w, &budget).unwrap(),
                    Verdict::Complete,
                    "witness is not certified complete: {w}"
                );
                witnessed += 1;
            }
        }
    }
    assert!(witnessed >= 10, "only {witnessed} witnesses checked");
}

/// Proposition 2.1(a–c), satisfaction half: a database satisfies the
/// classical constraint iff it satisfies the compiled containment
/// constraints.
#[test]
fn prop21_compilation_preserves_satisfaction() {
    let mut rng = SplitMix64::seed_from_u64(0x21A);
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();

    let fd = Fd::new(r, vec![0], vec![1]);
    let cfd = Cfd {
        rel: r,
        lhs: vec![0],
        rhs: vec![1],
        lhs_pattern: vec![(0, Value::int(1))],
        rhs_pattern: vec![(1, Value::int(2))],
    };
    // "Each R key carries at most one distinct value" as a denial pattern.
    let denial = at_most_k_per_key(r, 0, 1, 1, 2);
    let ind_master = IndCc::new(r, vec![0], mrel, vec![0]);
    let ind_empty = IndCc {
        rel: srel,
        cols: vec![0],
        master: None,
    };

    let fd_cs = ConstraintSet::new(fd_to_ccs(&fd, &s));
    let cfd_cs = ConstraintSet::new(cfd_to_ccs(&cfd, &s));
    let denial_cs = ConstraintSet::new(vec![denial_to_cc(&denial)]);
    let ind_master_cc = ind_to_cc(&ind_master);
    let ind_empty_cc = ind_to_cc(&ind_empty);

    let mut violations_seen = [0usize; 5];
    for _ in 0..250 {
        let dm = random_masters(&mut rng, 4);
        let db = random_db(&mut rng, 4, 5, 3);
        let cases: [(usize, bool, bool); 5] = [
            (0, fd.satisfied(&db), fd_cs.satisfied(&db, &dm).unwrap()),
            (1, cfd.satisfied(&db), cfd_cs.satisfied(&db, &dm).unwrap()),
            (
                2,
                denial.satisfied(&db),
                denial_cs.satisfied(&db, &dm).unwrap(),
            ),
            (
                3,
                ind_master.satisfied(&db, &dm),
                ind_master_cc.satisfied(&db, &dm).unwrap(),
            ),
            (
                4,
                ind_empty.satisfied(&db, &dm),
                ind_empty_cc.satisfied(&db, &dm).unwrap(),
            ),
        ];
        for (i, classical, compiled) in cases {
            assert_eq!(
                classical, compiled,
                "compilation {i} changed satisfaction on {db}"
            );
            if !classical {
                violations_seen[i] += 1;
            }
        }
    }
    // Every compilation must have been exercised on violating databases too,
    // or the equivalence check is vacuous.
    for (i, &violations) in violations_seen.iter().enumerate() {
        assert!(
            violations >= 5,
            "compilation {i}: only {violations} violations seen"
        );
    }
}

/// Brute-force refutation search *in classical terms*: enumerate every
/// extension of `db` by `R`/`S` tuples over `values`, keep the ones the
/// classical predicate accepts, and look for one that changes the answer.
fn classical_refutation_exists(
    q: &Query,
    db: &Database,
    values: &[Value],
    valid: &dyn Fn(&Database) -> bool,
) -> bool {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut pool: Vec<(RelId, Tuple)> = Vec::new();
    for a in values {
        for b in values {
            pool.push((r, Tuple::new([a.clone(), b.clone()])));
        }
        pool.push((srel, Tuple::new([a.clone()])));
    }
    assert!(pool.len() <= 16, "classical brute force pool too large");
    let q_d = q.eval(db).unwrap();
    for mask in 1u64..(1u64 << pool.len()) {
        let mut ext = db.clone();
        for (i, (rel, t)) in pool.iter().enumerate() {
            if mask & (1 << i) != 0 {
                ext.insert(*rel, t.clone());
            }
        }
        if valid(&ext) && q.eval(&ext).unwrap() != q_d {
            return true;
        }
    }
    false
}

/// Proposition 2.1, verdict half: deciding completeness under the *compiled*
/// setting matches the definition spelled out with the *classical*
/// constraints. `Incomplete` counterexamples are classically consistent and
/// change the answer; `Complete` verdicts survive a brute-force refutation
/// search driven by the classical predicates.
#[test]
fn prop21_compilation_preserves_verdicts() {
    let mut rng = SplitMix64::seed_from_u64(0x21B);
    let budget = SearchBudget::default();
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let m = master_schema();
    let mrel = m.rel_id("M").unwrap();
    // Values {0, 1} plus one fresh value: 9 + 3 = 12 candidate tuples per
    // brute-force run — small enough to enumerate all extensions, and by
    // the small-model property enough to witness any incompleteness.
    let values: Vec<Value> = vec![Value::int(0), Value::int(1), Value::int(97)];

    let fd = Fd::new(r, vec![0], vec![1]);
    let denial = at_most_k_per_key(r, 0, 1, 1, 2);
    let ind = IndCc::new(r, vec![0], mrel, vec![0]);

    let mut decided = 0usize;
    let mut refuted = 0usize;
    for round in 0..30 {
        let dm = random_masters(&mut rng, 2);
        let db = random_db(&mut rng, 2, 3, 2);

        // Two compiled settings: master IND + FD, and master IND + denial.
        type ClassicalPred = Box<dyn Fn(&Database) -> bool>;
        let classical: [(Vec<ContainmentConstraint>, ClassicalPred); 2] = [
            (
                {
                    let mut ccs = vec![ind_to_cc(&ind)];
                    ccs.extend(fd_to_ccs(&fd, &s));
                    ccs
                },
                {
                    let (fd, ind, dm) = (fd.clone(), ind.clone(), dm.clone());
                    Box::new(move |ext: &Database| fd.satisfied(ext) && ind.satisfied(ext, &dm))
                },
            ),
            (vec![ind_to_cc(&ind), denial_to_cc(&denial)], {
                let (denial, ind, dm) = (denial.clone(), ind.clone(), dm.clone());
                Box::new(move |ext: &Database| denial.satisfied(ext) && ind.satisfied(ext, &dm))
            }),
        ];
        for (ci, (ccs, valid)) in classical.into_iter().enumerate() {
            let setting = Setting::new(s.clone(), m.clone(), dm.clone(), ConstraintSet::new(ccs));
            if !setting.partially_closed(&db).unwrap() {
                continue;
            }
            for cq in tiny_cq_pool() {
                let q: Query = cq.into();
                match rcdp(&setting, &q, &db, &budget).unwrap() {
                    Verdict::Complete => {
                        assert!(
                            !classical_refutation_exists(&q, &db, &values, valid.as_ref()),
                            "round {round}, constraint {ci}: decider says Complete \
                             but a classical refutation exists for {db}"
                        );
                        decided += 1;
                    }
                    Verdict::Incomplete(ce) => {
                        let ext = db.union(&ce.delta).unwrap();
                        assert!(
                            valid(&ext),
                            "round {round}, constraint {ci}: counterexample \
                             violates the classical constraints: {ext}"
                        );
                        assert_ne!(
                            q.eval(&ext).unwrap(),
                            q.eval(&db).unwrap(),
                            "round {round}, constraint {ci}: counterexample \
                             does not change the answer"
                        );
                        assert!(
                            certify_counterexample(&setting, &q, &db, &ce).unwrap(),
                            "round {round}, constraint {ci}: counterexample \
                             fails its own certification"
                        );
                        decided += 1;
                        refuted += 1;
                    }
                    Verdict::Unknown { .. } => {}
                }
            }
        }
    }
    assert!(decided >= 30, "only {decided} decided instances");
    assert!(
        refuted >= 5,
        "only {refuted} incomplete instances exercised"
    );
}

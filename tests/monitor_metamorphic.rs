//! Metamorphic properties of the streaming monitor: relations between runs
//! that must hold *whatever* the verdicts are, complementing the
//! ground-truth pinning in `monitor_differential.rs`.
//!
//! 1. **Inversion** — a transaction followed by its exact inverse restores
//!    the monitor's semantic state bitwise ([`Monitor::state_digest`]).
//! 2. **Coalescing** — a transaction and its op-coalesced form (redundant
//!    insert/delete churn removed) produce identical verdicts *and*
//!    identical work counters: the monitor keys on net changes only.
//! 3. **Splitting** — breaking a transaction into singleton transactions
//!    never changes the final verdicts (only the intermediate ones).
//! 4. **Monotonicity** — along an insert-only admissible stream, `Complete`
//!    never degrades (the paper's extension order: a counterexample for the
//!    grown database would extend the original; cf. `paper_properties.rs`).

use ric::prelude::*;
use ric::SplitMix64;
use ric::{Monitor, Op, SettingId, Txn};

fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn master_schema() -> Schema {
    Schema::from_relations(vec![RelationSchema::infinite("M", &["b"])]).unwrap()
}

fn t(vs: &[i64]) -> Tuple {
    Tuple::new(vs.iter().map(|&v| Value::int(v)))
}

fn dm() -> Database {
    let ms = master_schema();
    let m = ms.rel_id("M").unwrap();
    let mut dm = Database::empty(&ms);
    for b in 0..3 {
        dm.insert(m, t(&[b]));
    }
    dm
}

/// A monitor with two settings: `crm` constrains and queries `R`'s `b`
/// column against the master list; `open-s` queries the unconstrained `S`.
fn monitor() -> (Monitor, Vec<SettingId>) {
    let s = schema();
    let ms = master_schema();
    let m = ms.rel_id("M").unwrap();
    let mut mon = Monitor::new(s.clone(), ms, dm(), SearchBudget::default()).unwrap();
    let body = CcBody::Cq(parse_cq(&s, "Q(B) :- R(A, B).").unwrap());
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(body, m, vec![0])]);
    let crm = mon
        .register(
            "crm",
            v.clone(),
            Query::Cq(parse_cq(&s, "Q(B) :- R(A, B).").unwrap()),
        )
        .unwrap();
    let open_s = mon
        .register(
            "open-s",
            v,
            Query::Cq(parse_cq(&s, "Q(A) :- S(A).").unwrap()),
        )
        .unwrap();
    (mon, vec![crm, open_s])
}

fn random_txn(rng: &mut SplitMix64, batch: usize) -> Txn {
    let s = schema();
    let ms = master_schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = ms.rel_id("M").unwrap();
    let mut ops = Vec::with_capacity(batch);
    for _ in 0..batch {
        let a = rng.random_range(0..5) as i64;
        let b = rng.random_range(0..4) as i64;
        match rng.random_range(0..10) {
            0..=4 => ops.push(Op::insert(r, t(&[a, b]))),
            5..=6 => ops.push(Op::insert(srel, t(&[a]))),
            7 => ops.push(Op::delete(r, t(&[a, b]))),
            8 => ops.push(Op::delete(srel, t(&[a]))),
            _ => ops.push(Op::master_insert(m, t(&[b]))),
        }
    }
    Txn::new(ops)
}

/// The *effective* form of an applied transaction, reconstructed from
/// before/after snapshots: its [`Txn::inverse`] is exact by construction.
fn effective_txn(before: (&Database, &Database), after: (&Database, &Database)) -> Txn {
    let mut ops = Vec::new();
    for (pre, post, master) in [(before.0, after.0, false), (before.1, after.1, true)] {
        for (rel, inst) in post.iter() {
            for tup in inst.iter() {
                if !pre.instance(rel).contains(tup) {
                    ops.push(if master {
                        Op::master_insert(rel, tup.clone())
                    } else {
                        Op::insert(rel, tup.clone())
                    });
                }
            }
        }
        for (rel, inst) in pre.iter() {
            for tup in inst.iter() {
                if !post.instance(rel).contains(tup) {
                    ops.push(if master {
                        Op::master_delete(rel, tup.clone())
                    } else {
                        Op::delete(rel, tup.clone())
                    });
                }
            }
        }
    }
    Txn::new(ops)
}

#[test]
fn txn_then_exact_inverse_restores_the_state_digest() {
    let mut rng = SplitMix64::seed_from_u64(0x1F5E);
    let (mut mon, ids) = monitor();
    // Walk a stream; after every step, undo it and demand bitwise semantic
    // equality, then redo it to keep walking.
    for step in 0..20 {
        let digest = mon.state_digest();
        let statuses: Vec<_> = ids
            .iter()
            .map(|id| mon.verdict(*id).unwrap().status())
            .collect();
        let before = (mon.db().clone(), mon.dm().clone());
        let txn = random_txn(&mut rng, 4);
        mon.apply(&txn).unwrap();
        let eff = effective_txn((&before.0, &before.1), (mon.db(), mon.dm()));
        mon.apply(&eff.inverse()).unwrap();
        assert_eq!(
            mon.state_digest(),
            digest,
            "step {step}: inverse must restore the digest"
        );
        for (id, status) in ids.iter().zip(&statuses) {
            assert_eq!(mon.verdict(*id).unwrap().status(), *status, "step {step}");
        }
        mon.apply(&eff).unwrap();
    }
}

#[test]
fn coalesced_txns_are_indistinguishable_including_counters() {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    // Churny form: inserts and deletes that cancel, duplicate inserts, and
    // a delete-then-reinsert; net effect = {R(10,1), R(20,2), S(3)}.
    let churny = Txn::new([
        Op::insert(r, t(&[10, 1])),
        Op::insert(r, t(&[99, 3])), // will be deleted below
        Op::insert(srel, t(&[3])),
        Op::delete(r, t(&[99, 3])),
        Op::insert(r, t(&[20, 2])),
        Op::delete(r, t(&[10, 1])),
        Op::insert(r, t(&[10, 1])), // delete-then-reinsert cancels
        Op::insert(r, t(&[20, 2])), // duplicate
    ]);
    let coalesced = Txn::new([
        Op::insert(r, t(&[10, 1])),
        Op::insert(r, t(&[20, 2])),
        Op::insert(srel, t(&[3])),
    ]);

    let (mut a, ids_a) = monitor();
    let (mut b, ids_b) = monitor();
    a.apply(&churny).unwrap();
    b.apply(&coalesced).unwrap();
    assert_eq!(a.db(), b.db());
    assert_eq!(a.state_digest(), b.state_digest());
    for (ia, ib) in ids_a.iter().zip(&ids_b) {
        assert_eq!(a.verdict(*ia).unwrap(), b.verdict(*ib).unwrap());
    }
    assert_eq!(
        a.counters(),
        b.counters(),
        "all work counters (skips included) must agree: the monitor keys on net changes"
    );
}

#[test]
fn a_txn_that_nets_to_nothing_skips_every_setting() {
    let (mut mon, _) = monitor();
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let skip0 = mon.counters().skip;
    let digest = mon.state_digest();
    let tup = t(&[10, 1]);
    mon.apply(&Txn::new([
        Op::insert(r, tup.clone()),
        Op::insert(r, t(&[20, 2])),
        Op::delete(r, t(&[20, 2])),
        Op::delete(r, tup),
    ]))
    .unwrap();
    assert_eq!(mon.counters().skip, skip0 + 2, "both settings skip O(1)");
    assert_eq!(mon.state_digest(), digest);
    assert_eq!(mon.counters().redecide, 2, "registration decisions only");
}

#[test]
fn splitting_txns_into_singletons_preserves_final_verdicts() {
    for seed in [0x51u64, 0x52, 0x53] {
        let mut rng_a = SplitMix64::seed_from_u64(seed);
        let mut rng_b = SplitMix64::seed_from_u64(seed);
        let (mut batched, ids_a) = monitor();
        let (mut split, ids_b) = monitor();
        for _ in 0..12 {
            let txn = random_txn(&mut rng_a, 6);
            batched.apply(&txn).unwrap();
            let same = random_txn(&mut rng_b, 6);
            assert_eq!(txn, same);
            for op in same.ops {
                split.apply(&Txn::new([op])).unwrap();
            }
        }
        assert_eq!(batched.db(), split.db());
        assert_eq!(batched.dm(), split.dm());
        for (ia, ib) in ids_a.iter().zip(&ids_b) {
            assert_eq!(
                batched.verdict(*ia).unwrap().status(),
                split.verdict(*ib).unwrap().status(),
                "seed {seed:#x}: final statuses must not depend on batching"
            );
        }
    }
}

#[test]
fn complete_is_monotone_along_insert_only_admissible_streams() {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let (mut mon, ids) = monitor();
    let crm = ids[0];
    // Cover the master list: crm becomes Complete.
    mon.apply(&Txn::new([
        Op::insert(r, t(&[10, 0])),
        Op::insert(r, t(&[10, 1])),
        Op::insert(r, t(&[10, 2])),
    ]))
    .unwrap();
    assert_eq!(mon.verdict(crm).unwrap().status(), Status::Complete);

    // Entailed/admissible inserts only (b drawn from the master list, plus
    // unconstrained S churn): Complete must never flip.
    let mut rng = SplitMix64::seed_from_u64(0x3A0);
    for step in 0..30 {
        let a = rng.random_range(0..50) as i64;
        let b = rng.random_range(0..3) as i64;
        let op = if rng.random_range(0..3) == 0 {
            Op::insert(srel, t(&[a]))
        } else {
            Op::insert(r, t(&[a, b]))
        };
        mon.apply(&Txn::new([op])).unwrap();
        assert_eq!(
            mon.verdict(crm).unwrap().status(),
            Status::Complete,
            "step {step}: insert-only admissible stream degraded Complete"
        );
    }
}

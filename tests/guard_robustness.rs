//! Degradation-path tests for the guard layer: deadlines, cooperative
//! cancellation, panic isolation at the facade, and deterministic fault
//! injection. Every test here is deterministic — faults fire at exact tick
//! counts (or a zero deadline that is already expired when the guard is
//! built), never on sleeps or timing races.

use std::time::Duration;

use ric::prelude::*;
use ric::FaultSink;

/// Example 2.1 in miniature: Supt(eid, cid) with cid bounded by the master
/// customer list {c1, c2}; the database only knows e0 supports c1.
fn master_bounded_instance() -> (Setting, Query, Database) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(dcust, Tuple::new([Value::str("c1")]));
    dm.insert(dcust, Tuple::new([Value::str("c2")]));
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));
    (setting, q, db)
}

/// An IND-bounded RCQP instance that must *enumerate* to decide: the
/// blockedness check runs the guarded valuation meter over the active
/// domain, so deadline/cancel trips are actually observed (instances decided
/// by the static fast paths never poll the guard — that early answer is
/// sound and costs nothing, so it needs no interruption).
fn ind_rcqp_instance() -> (Setting, Query, SearchBudget) {
    let (setting, q, _db) = master_bounded_instance();
    (setting, q, SearchBudget::default())
}

/// An FP query (transitive closure), forcing the bounded semi-decision on
/// the undecidable cell.
fn fp_bounded_instance() -> (Setting, Query, Database) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Manage", &["up", "down"])]).unwrap();
    let manage = schema.rel_id("Manage").unwrap();
    let setting = Setting::open_world(schema.clone());
    let mut db = Database::empty(&schema);
    for (a, b) in [("e2", "e1"), ("e1", "e0")] {
        db.insert(manage, Tuple::new([Value::str(a), Value::str(b)]));
    }
    let fp: Query = parse_program(
        &schema,
        "Above(X, Y) :- Manage(X, Y). Above(X, Y) :- Manage(X, Z), Above(Z, Y). \
         Boss(X) :- Above(X, Y), Y = 'e0'.",
        "Boss",
    )
    .unwrap()
    .into();
    (setting, fp, db)
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

#[test]
fn fault_deadline_degrades_the_exact_rcdp_decider() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(0));
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Deadline);
            assert_eq!(stats.valuations, 0, "no work granted after the trip");
            assert_eq!(
                stats.detail,
                "wall-clock deadline expired after 0 valuation(s)"
            );
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    assert_eq!(guard.tripped(), Some(Interrupt::Deadline));
}

#[test]
fn fault_deadline_degrades_the_rcqp_decider() {
    let (setting, q, budget) = ind_rcqp_instance();
    // Sanity: without the fault the instance is decided nonempty (the IND
    // bounds the head variable, so a witness database exists).
    assert!(rcqp(&setting, &q, &budget).unwrap().is_nonempty());
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(0));
    let v = rcqp_guarded(&setting, &q, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        QueryVerdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Deadline);
            assert!(
                stats.detail.starts_with("wall-clock deadline expired"),
                "detail: {}",
                stats.detail
            );
        }
        other => panic!("expected unknown, got {other:?}"),
    }
}

#[test]
fn fault_deadline_degrades_the_bounded_semidecision() {
    // FP routes through the bounded extension search (the undecidable cell);
    // the same guard must stop it.
    let (setting, fp, db) = fp_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(0));
    let v = rcdp_guarded(&setting, &fp, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Deadline),
        other => panic!("expected unknown, got {other:?}"),
    }
}

#[test]
fn fault_deadline_mid_search_reports_the_work_done_so_far() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    // Let exactly two ticks through, then trip.
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(2));
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Deadline);
            assert!(stats.valuations <= 2, "valuations: {}", stats.valuations);
        }
        // The counterexample surfaced before tick 3 — also sound.
        Verdict::Incomplete(_) => {}
        other => panic!("unexpected verdict {other:?}"),
    }
}

#[test]
fn real_zero_deadline_stops_before_any_work() {
    // `Duration::ZERO` is already expired when the guard is built, so this
    // exercises the real clock path deterministically (no sleeps).
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default().with_deadline(Duration::ZERO);
    let v = rcdp(&setting, &q, &db, &budget).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Deadline);
            assert_eq!(stats.valuations, 0);
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    // The same budget stops RCQP too.
    let (setting, q, rcqp_budget) = ind_rcqp_instance();
    let budget = rcqp_budget.with_deadline(Duration::ZERO);
    match rcqp(&setting, &q, &budget).unwrap() {
        QueryVerdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Deadline),
        other => panic!("expected unknown, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

#[test]
fn precancelled_token_degrades_to_unknown_with_no_work() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let token = CancelToken::new();
    token.cancel();
    let guard = Guard::new(&budget).with_cancel(token);
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Cancelled);
            assert_eq!(stats.valuations, 0);
            assert_eq!(stats.detail, "cancelled after 0 valuation(s)");
        }
        other => panic!("expected unknown, got {other:?}"),
    }
}

#[test]
fn cancellation_from_another_thread_is_observed() {
    // The token is the cross-thread handle: cancel it on a worker thread,
    // join (so the test stays deterministic), then run the decision.
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let token = CancelToken::new();
    let remote = token.clone();
    std::thread::spawn(move || remote.cancel()).join().unwrap();
    assert!(token.is_cancelled());
    let guard = Guard::new(&budget).with_cancel(token);
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Cancelled),
        other => panic!("expected unknown, got {other:?}"),
    }
}

#[test]
fn fault_cancel_degrades_rcqp_and_the_bounded_search() {
    let (setting, q, budget) = ind_rcqp_instance();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().cancel_at_tick(0));
    match rcqp_guarded(&setting, &q, &budget, &guard, Probe::disabled()).unwrap() {
        QueryVerdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Cancelled),
        other => panic!("expected unknown, got {other:?}"),
    }

    let (setting, fp, db) = fp_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().cancel_at_tick(0));
    match rcdp_guarded(&setting, &fp, &db, &budget, &guard, Probe::disabled()).unwrap() {
        Verdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Cancelled),
        other => panic!("expected unknown, got {other:?}"),
    }
}

#[test]
fn a_tripped_guard_fails_fast_on_reuse() {
    // Trips are sticky: a second decision sharing the guard performs no work.
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let token = CancelToken::new();
    token.cancel();
    let guard = Guard::new(&budget).with_cancel(token);
    for _ in 0..2 {
        match rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap() {
            Verdict::Unknown { stats } => {
                assert_eq!(stats.limit, BudgetLimit::Cancelled);
                assert_eq!(stats.valuations, 0);
            }
            other => panic!("expected unknown, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic meter exhaustion
// ---------------------------------------------------------------------------

#[test]
fn fault_exhausted_meter_reports_the_count_limit_not_an_interrupt() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget)
        .with_fault_plan(FaultPlan::new().exhaust_meter(MeterKind::Valuations, 0));
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::MaxValuations);
            assert_eq!(stats.valuations, 0);
            // Same wording as a genuinely configured zero budget.
            assert_eq!(stats.detail, "valuation budget of 0 exhausted");
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    assert_eq!(guard.tripped(), None, "exhaustion is not an interrupt");
}

#[test]
fn fault_exhausted_candidate_meter_stops_the_bounded_rcqp_search() {
    // The candidate meter drives the bounded semi-decision (FP query).
    let (setting, fp, _db) = fp_bounded_instance();
    let budget = SearchBudget {
        max_delta_tuples: 2,
        fresh_values: 1,
        ..SearchBudget::default()
    };
    let guard = Guard::new(&budget)
        .with_fault_plan(FaultPlan::new().exhaust_meter(MeterKind::Candidates, 0));
    match rcqp_guarded(&setting, &fp, &budget, &guard, Probe::disabled()).unwrap() {
        QueryVerdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::MaxCandidates);
            assert_eq!(stats.candidates, 0);
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    assert_eq!(guard.tripped(), None, "exhaustion is not an interrupt");
}

// ---------------------------------------------------------------------------
// Panic isolation at the facade
// ---------------------------------------------------------------------------

#[test]
fn try_rcdp_converts_an_injected_panic_into_a_typed_error() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    // Wire the fault through the probe seam: the plan names the stage, the
    // FaultSink fires it when that telemetry event is emitted.
    let plan = FaultPlan::new().panic_at_stage("rcdp.enumerate");
    let sink = FaultSink::new(plan.panic_stage().unwrap(), None);
    let err = ric::try_rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&sink))
        .expect_err("the injected panic must surface as an error");
    match &err {
        DecisionError::Panic { message, notes } => {
            assert!(
                message.contains("fault injection"),
                "payload preserved: {message}"
            );
            // The internal collector records before the panicking sink, so
            // the decision path survives for post-mortems.
            assert!(
                notes.iter().any(|n| n == "rcdp.strategy: exact"),
                "notes: {notes:?}"
            );
        }
        other => panic!("expected a panic error, got {other:?}"),
    }
    assert_eq!(
        err.to_string(),
        "decision panicked: fault injection: stage rcdp.enumerate panicked"
    );
}

#[test]
fn try_rcqp_converts_an_injected_panic_into_a_typed_error() {
    let (setting, q, budget) = ind_rcqp_instance();
    let sink = FaultSink::new("rcqp.strategy", None);
    let err = ric::try_rcqp_probed(&setting, &q, &budget, Probe::attached(&sink))
        .expect_err("the injected panic must surface as an error");
    match err {
        DecisionError::Panic { message, .. } => {
            assert!(message.contains("rcqp.strategy"), "message: {message}");
        }
        other => panic!("expected a panic error, got {other:?}"),
    }
}

#[test]
fn try_variants_agree_with_the_plain_deciders_on_normal_runs() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let plain = rcdp(&setting, &q, &db, &budget).unwrap();
    let guarded = ric::try_rcdp(&setting, &q, &db, &budget).unwrap();
    assert_eq!(plain, guarded);

    let (setting, q, budget) = ind_rcqp_instance();
    let plain = rcqp(&setting, &q, &budget).unwrap();
    let guarded = ric::try_rcqp(&setting, &q, &budget).unwrap();
    assert_eq!(plain, guarded);
}

#[test]
fn try_variants_pass_typed_decider_errors_through() {
    // A non-partially-closed input is an RcError, not a panic.
    let (setting, q, _db) = master_bounded_instance();
    let schema = setting.schema.clone();
    let supt = schema.rel_id("Supt").unwrap();
    let mut open = Database::empty(&schema);
    open.insert(supt, Tuple::new([Value::str("e9"), Value::str("c9")]));
    let err = ric::try_rcdp(&setting, &q, &open, &SearchBudget::default())
        .expect_err("c9 is outside the master list");
    match err {
        DecisionError::Rc(RcError::NotPartiallyClosed) => {}
        other => panic!("expected NotPartiallyClosed, got {other:?}"),
    }
}

#[test]
fn try_variants_still_tee_telemetry_to_the_caller_sink() {
    let (setting, q, db) = master_bounded_instance();
    let collector = Collector::new();
    let v = ric::try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector),
    )
    .unwrap();
    assert!(v.verdict.is_incomplete());
    // The facade attaches a structured explanation built from its own trace.
    assert_eq!(v.explain.outcome.as_deref(), Some("incomplete"));
    assert_eq!(v.explain.tree.roots().len(), 1);
    assert_eq!(v.explain.tree.records()[0].name, "decision");
    let report = collector.report();
    assert_eq!(report.notes("rcdp.strategy"), vec!["exact".to_string()]);
    assert!(report.counter("rcdp.valuations") >= 1);
}

// ---------------------------------------------------------------------------
// Interrupt telemetry
// ---------------------------------------------------------------------------

#[test]
fn interrupts_are_recorded_with_site_and_tick() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(0));
    let collector = Collector::new();
    rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .unwrap();
    let report = collector.report();
    assert_eq!(report.interrupts.len(), 1);
    assert_eq!(report.interrupts[0].name, "rcdp.interrupt");
    assert_eq!(report.interrupts[0].reason, "deadline");
    assert_eq!(report.interrupts[0].at_tick, guard.ticks());
    assert_eq!(report.notes("rcdp.limit"), vec!["deadline".to_string()]);
}

// ---------------------------------------------------------------------------
// Worker-death recovery and the engine degradation ladder
// ---------------------------------------------------------------------------

#[test]
fn a_single_worker_panic_is_quarantined_and_retried() {
    let (setting, q, db) = master_bounded_instance();
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let expected = rcdp(&setting, &q, &db, &indexed).unwrap();

    // One worker, so the first chunk's first tick deterministically dies;
    // one fire, so the quarantine retry of that chunk survives.
    let budget = SearchBudget::default().with_engine(Engine::parallel(1));
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().worker_panic_at_tick(0, 1));
    let collector = Collector::new();
    let decision = ric::try_rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .expect("one worker death must not kill the decision");
    assert_eq!(decision.verdict, expected, "verdict after chunk recovery");

    let report = collector.report();
    assert!(
        report.counter("recover.chunk") >= 1,
        "the quarantined chunk retry must be recorded: {:?}",
        report.counters
    );
    assert_eq!(report.counter("degrade.chunk"), 0);
    assert!(
        report.notes("degrade.engine").is_empty(),
        "a recovered run must not degrade"
    );
}

#[test]
fn repeated_worker_deaths_degrade_parallel_to_indexed() {
    let (setting, q, db) = master_bounded_instance();
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let expected = rcdp(&setting, &q, &db, &indexed).unwrap();

    // Unlimited fires: the chunk dies again on its quarantine retry, so the
    // scheduler must walk the degradation ladder instead of re-raising.
    let budget = SearchBudget::default().with_engine(Engine::parallel(1));
    let guard =
        Guard::new(&budget).with_fault_plan(FaultPlan::new().worker_panic_at_tick(0, u32::MAX));
    let collector = Collector::new();
    let decision = ric::try_rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .expect("a lost chunk must degrade, not error");
    assert_eq!(decision.verdict, expected, "verdict after degradation");

    let report = collector.report();
    assert!(
        report.counter("degrade.chunk") >= 1,
        "{:?}",
        report.counters
    );
    let notes = report.notes("degrade.engine");
    assert_eq!(notes.len(), 1, "exactly one degradation note: {notes:?}");
    assert!(
        notes[0].contains("downgrading to the sequential"),
        "note should explain the downgrade: {}",
        notes[0]
    );
}

#[test]
fn repeated_worker_deaths_degrade_the_bounded_search_too() {
    let (setting, q, db) = fp_bounded_instance();
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let expected = rcdp(&setting, &q, &db, &indexed).unwrap();

    let budget = SearchBudget::default().with_engine(Engine::parallel(1));
    let guard =
        Guard::new(&budget).with_fault_plan(FaultPlan::new().worker_panic_at_tick(0, u32::MAX));
    let collector = Collector::new();
    let decision = ric::try_rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .expect("a lost chunk must degrade, not error");
    assert_eq!(
        decision.verdict, expected,
        "bounded verdict after degradation"
    );
    let report = collector.report();
    assert!(
        !report.notes("degrade.engine").is_empty(),
        "the bounded scheduler must record its downgrade: {:?}",
        report.counters
    );
}

// ---------------------------------------------------------------------------
// Sink flushing on the panic path
// ---------------------------------------------------------------------------

#[test]
fn buffered_sinks_are_flushed_on_the_facade_panic_path() {
    use std::io;
    use std::sync::{Arc, Mutex};

    /// A writer into a shared buffer, so the test can observe what the
    /// facade actually pushed through the `BufWriter` before unwinding.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl io::Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    let (setting, q, db) = master_bounded_instance();
    let buf = Arc::new(Mutex::new(Vec::new()));
    let jsonl = ric::JsonlSink::new(SharedBuf(Arc::clone(&buf)));
    // The caller's sink chain: a buffered JSONL sink behind the panicking
    // stage. Events recorded before the trigger sit in the BufWriter; only
    // the facade's exit-path flush can get them out.
    let fault = FaultSink::new("rcdp.enumerate", Some(&jsonl));
    let err = ric::try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&fault),
    )
    .expect_err("the injected panic must surface as an error");
    assert!(matches!(err, DecisionError::Panic { .. }));

    // `jsonl` is still alive, so its BufWriter has not been dropped: every
    // byte in the shared buffer got there via the facade's flush.
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    assert!(
        text.lines().count() >= 1,
        "pre-panic telemetry must be flushed through the buffered sink"
    );
    for line in text.lines() {
        let doc = ric::telemetry::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable flushed line {line:?}: {e:?}"));
        assert!(doc.get("kind").is_some(), "not an event line: {line}");
    }
}

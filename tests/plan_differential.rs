//! Differential testing of the planned engine: `Engine::Planned` must agree
//! — verdict, witness, and deterministic counters — with `Engine::Indexed`
//! and `Engine::Naive` on randomized instances, at every worker count, and
//! under arbitrarily wrong statistics.
//!
//! The planner's contract is *estimates-in, exactness-out*: statistics steer
//! only the join order of constraint-body evaluation, whose result is
//! order-independent. This suite pins that contract end to end:
//!
//! * RCDP verdicts and witnesses identical to Indexed (and verdict kinds to
//!   Naive) across workers {1, 4} and seeds;
//! * the deterministic decision counters (`rcdp.valuations`,
//!   `rcdp.cc_checks`, `cc.skipped_by_delta`) bit-identical to Indexed —
//!   `index.probe` is legitimately order-dependent and excluded;
//! * stale, empty, or adversarially lying statistics (a [`PreparedSetting`]
//!   built from the wrong database) change timing only, never verdicts;
//! * `plan.*` telemetry appears under Planned only, so the Indexed counter
//!   stream stays byte-compatible with earlier releases.

use ric::prelude::*;
use ric::SplitMix64;

/// Fixed two-relation schema: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// A constraint setting with *CQ-bodied* (join) constraints, so the upper
/// bounds leave the IND fast path and the delta preparation actually
/// compiles plans: endpoints of R-edges into S are bounded by master `M`,
/// and `S` itself by master `N`.
fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.8) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.8) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let join = parse_cq(&s, "Q(X) :- R(X, Y), S(Y).").unwrap();
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(CcBody::Cq(join), mrel, vec![0]),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

fn worker_counts() -> Vec<usize> {
    match std::env::var("RIC_WORKERS") {
        Ok(spec) => spec
            .split(',')
            .map(|w| w.trim().parse().expect("RIC_WORKERS must be integers"))
            .collect(),
        Err(_) => vec![1, 4],
    }
}

/// Counters that must be bit-identical between Indexed and Planned: the plan
/// changes join *order* only, so enumeration and check counts are invariant.
/// `index.probe` is excluded by design — a different join order probes a
/// different number of times.
const DETERMINISTIC_COUNTERS: [&str; 3] =
    ["rcdp.valuations", "rcdp.cc_checks", "cc.skipped_by_delta"];

fn observed(
    setting: &Setting,
    q: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> (Verdict, Vec<(&'static str, u64)>, Report) {
    let collector = Collector::new();
    let v = rcdp_probed(setting, q, db, budget, Probe::attached(&collector)).unwrap();
    let report = collector.report();
    let counters = DETERMINISTIC_COUNTERS
        .iter()
        .map(|&n| (n, report.counter(n)))
        .collect();
    (v, counters, report)
}

/// Planned ≡ Indexed ≡ Naive: verdicts, witnesses, deterministic counters.
#[test]
fn planned_rcdp_matches_indexed_and_naive() {
    let mut rng = SplitMix64::seed_from_u64(0x714A);
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let mut decided = 0usize;
    for round in 0..30 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 6, 4);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vn = rcdp(&setting, &q, &db, &naive).unwrap();
            let (vi, ci, _) = observed(&setting, &q, &db, &indexed);
            for workers in worker_counts() {
                let planned = SearchBudget::default().with_engine(Engine::planned(workers));
                let (vp, cp, _) = observed(&setting, &q, &db, &planned);
                assert_eq!(
                    std::mem::discriminant(&vn),
                    std::mem::discriminant(&vp),
                    "planned and naive disagree (round {round}, query {qi}, workers {workers})"
                );
                match (&vi, &vp) {
                    (Verdict::Complete, Verdict::Complete) => {}
                    (Verdict::Incomplete(a), Verdict::Incomplete(b)) => {
                        assert_eq!(
                            (&a.delta, &a.new_answer),
                            (&b.delta, &b.new_answer),
                            "planned witness differs from indexed \
                             (round {round}, query {qi}, workers {workers})"
                        );
                        assert!(
                            ric::complete::rcdp::certify_counterexample(&setting, &q, &db, b)
                                .unwrap(),
                            "uncertified planned counterexample \
                             (round {round}, query {qi}, workers {workers})"
                        );
                    }
                    other => panic!(
                        "planned and indexed disagree \
                         (round {round}, query {qi}, workers {workers}): {other:?}"
                    ),
                }
                assert_eq!(
                    ci, cp,
                    "deterministic counters diverge \
                     (round {round}, query {qi}, workers {workers})"
                );
            }
            decided += 1;
        }
    }
    assert!(
        decided >= 30,
        "too few partially closed instances generated ({decided})"
    );
}

/// Statistics are advisory: a preparation built from the wrong database —
/// stale (pre-growth), empty (no stats at all), or an adversarial lie — must
/// return exactly the Indexed verdict on the real database.
#[test]
fn wrong_statistics_change_timing_not_verdicts() {
    let mut rng = SplitMix64::seed_from_u64(0x57A7);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let planned = SearchBudget::default().with_engine(Engine::planned(1));
    let mut decided = 0usize;
    for round in 0..20 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 6, 4);
        // Stats sources: the real db, an empty db (forces static-fallback
        // plans), and a "lying" unrelated db with a skewed distribution.
        let empty = Database::empty(&setting.schema);
        let lying = {
            let s = schema();
            let r = s.rel_id("R").unwrap();
            let mut d = Database::empty(&s);
            for i in 0..50 {
                d.insert(r, Tuple::new([Value::int(999), Value::int(i)]));
            }
            d
        };
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vi = rcdp(&setting, &q, &db, &indexed).unwrap();
            for (si, stats_db) in [&db, &empty, &lying].into_iter().enumerate() {
                let prepared = ric::prepare(&setting, stats_db, Engine::planned(1)).unwrap();
                let vp = ric::try_rcdp_prepared(&prepared, &q, &db, &planned).unwrap();
                assert_eq!(
                    vi, vp,
                    "stats source {si} changed the verdict (round {round}, query {qi})"
                );
            }
            decided += 1;
        }
    }
    assert!(decided >= 20, "too few instances decided ({decided})");
}

/// RCQP verdict kinds agree between Indexed and Planned at both worker
/// counts (the general search compiles plans from the near-empty seed, so
/// this also exercises the static-fallback executor in anger).
#[test]
fn planned_rcqp_matches_indexed() {
    let mut rng = SplitMix64::seed_from_u64(0x9C9C);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    for round in 0..8 {
        let setting = random_setting(&mut rng);
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vi = rcqp(&setting, &q, &indexed).unwrap();
            for workers in worker_counts() {
                let planned = SearchBudget::default().with_engine(Engine::planned(workers));
                let vp = rcqp(&setting, &q, &planned).unwrap();
                assert_eq!(
                    std::mem::discriminant(&vi),
                    std::mem::discriminant(&vp),
                    "RCQP diverges (round {round}, query {qi}, workers {workers}): \
                     {vi:?} vs {vp:?}"
                );
            }
        }
    }
}

/// `plan.*` telemetry is planned-engine-only: Planned decisions emit
/// `plan.compile`/`plan.cost` and the `plan.explain` note, prepared
/// decisions emit `plan.reuse` instead of `plan.compile`, and Indexed
/// decisions emit none of it (stream compatibility).
#[test]
fn plan_telemetry_only_under_planned_engine() {
    let mut rng = SplitMix64::seed_from_u64(0x7E1E);
    let (setting, db) = loop {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 6, 4);
        if setting.partially_closed(&db).unwrap() {
            break (setting, db);
        }
    };
    let q: Query = parse_cq(&schema(), "Q(X) :- R(X, Y), S(Y).")
        .unwrap()
        .into();

    let run = |budget: &SearchBudget| {
        let collector = Collector::new();
        rcdp_probed(&setting, &q, &db, budget, Probe::attached(&collector)).unwrap();
        collector.report()
    };
    let planned_report = run(&SearchBudget::default().with_engine(Engine::planned(1)));
    assert!(
        planned_report.counter("plan.compile") >= 1,
        "planned decision compiled no plans"
    );
    assert!(
        planned_report
            .notes
            .iter()
            .any(|(n, _)| *n == "plan.explain"),
        "planned decision emitted no explain note"
    );
    let indexed_report = run(&SearchBudget::default().with_engine(Engine::Indexed));
    assert!(
        !indexed_report
            .counters
            .keys()
            .any(|k| k.starts_with("plan.")),
        "indexed decision leaked plan.* counters: {:?}",
        indexed_report.counters
    );

    // The prepared path replaces per-decision compilation with reuse.
    let prepared = ric::prepare(&setting, &db, Engine::planned(1)).unwrap();
    let collector = Collector::new();
    let budget = SearchBudget::default().with_engine(Engine::planned(1));
    ric::try_rcdp_prepared_probed(&prepared, &q, &db, &budget, Probe::attached(&collector))
        .unwrap();
    let report = collector.report();
    assert_eq!(
        report.counter("plan.reuse"),
        1,
        "prepared decision must reuse"
    );
    assert_eq!(
        report.counter("plan.compile"),
        0,
        "prepared decision must not recompile"
    );
}

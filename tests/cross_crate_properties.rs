//! Property-based cross-validation of the framework's load-bearing
//! invariants, using randomly generated databases, queries, and constraints.
//!
//! These suites need the external `proptest` crate, which is unavailable in
//! the offline build; enable the off-by-default `proptest` cargo feature to
//! run them (`cargo test --features proptest`).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ric::prelude::*;
use std::collections::BTreeSet;

/// A small fixed schema for the generators: `R(a, b)` and `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

prop_compose! {
    /// A database over `schema()` with values in 0..6.
    fn arb_db()(r_tuples in proptest::collection::vec((0i64..6, 0i64..6), 0..8),
                s_tuples in proptest::collection::vec(0i64..6, 0..5))
                -> Database {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let srel = s.rel_id("S").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in r_tuples {
            db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
        }
        for a in s_tuples {
            db.insert(srel, Tuple::new([Value::int(a)]));
        }
        db
    }
}

/// A pool of small CQs over `schema()`.
fn queries() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(X) :- R(X, 3).",
        "Q() :- R(1, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimised CQ evaluator agrees with the naive reference evaluator.
    #[test]
    fn cq_eval_matches_naive(db in arb_db(), qi in 0usize..6) {
        let q = &queries()[qi];
        let t = ric::query::Tableau::of(q).unwrap();
        let fast = ric::query::eval::eval_tableau(&t, &db);
        let slow = ric::query::eval::eval_tableau_naive(&t, &db);
        prop_assert_eq!(fast, slow);
    }

    /// CQ answers are monotone under database extension.
    #[test]
    fn cq_eval_is_monotone(db in arb_db(), extra in arb_db(), qi in 0usize..6) {
        let q = &queries()[qi];
        let bigger = db.union(&extra).unwrap();
        let small = ric::query::eval::eval_cq(q, &db).unwrap();
        let large = ric::query::eval::eval_cq(q, &bigger).unwrap();
        prop_assert!(small.is_subset(&large));
    }

    /// Partial closure is inherited by sub-databases (the downward closure
    /// the per-disjunct RCDP decider relies on).
    #[test]
    fn partial_closure_is_downward_closed(db in arb_db(), extra in arb_db()) {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mschema = Schema::from_relations(
            vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let m = mschema.rel_id("M").unwrap();
        let mut dm = Database::empty(&mschema);
        for v in 0..4i64 {
            dm.insert(m, Tuple::new([Value::int(v)]));
        }
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])), m, vec![0],
        )]);
        let bigger = db.union(&extra).unwrap();
        let big_ok = v.satisfied(&bigger, &dm).unwrap();
        if big_ok {
            prop_assert!(v.satisfied(&db, &dm).unwrap());
        }
    }

    /// Proposition 2.1(b): the direct CFD check and the compiled containment
    /// constraints agree on every database.
    #[test]
    fn cfd_compilation_equivalence(db in arb_db(), lhs_col in 0usize..2) {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let cfd = Cfd {
            rel: r,
            lhs: vec![lhs_col],
            rhs: vec![1 - lhs_col],
            lhs_pattern: vec![],
            rhs_pattern: vec![],
        };
        let ccs = ric::constraints::compile::cfd_to_ccs(&cfd, &s);
        let dm = Database::with_relations(0);
        let compiled = ccs.iter().all(|cc| cc.satisfied(&db, &dm).unwrap());
        prop_assert_eq!(cfd.satisfied(&db), compiled);
    }

    /// Proposition 2.1(a): denial constraints likewise.
    #[test]
    fn denial_compilation_equivalence(db in arb_db()) {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let denial = ric::constraints::classical::at_most_k_per_key(r, 0, 1, 2, 2);
        let cc = ric::constraints::compile::denial_to_cc(&denial);
        let dm = Database::with_relations(0);
        prop_assert_eq!(denial.satisfied(&db), cc.satisfied(&db, &dm).unwrap());
    }

    /// Lemma 3.2: `Q(D) = f_Q(Q)(f_D(D))` under the single-relation
    /// transform.
    #[test]
    fn single_relation_transform_preserves_answers(db in arb_db(), qi in 0usize..6) {
        let s = schema();
        let q = &queries()[qi];
        let tr = ric::query::single_rel::SingleRelTransform::new(&s);
        let db_hat = tr.map_database(&db);
        let q_hat = tr.map_query(q);
        prop_assert_eq!(
            ric::query::eval::eval_cq(q, &db).unwrap(),
            ric::query::eval::eval_cq(&q_hat, &db_hat).unwrap()
        );
    }

    /// RCDP verdicts certify: `Incomplete` counterexamples check out, and
    /// `Complete` databases survive random extension probes over their
    /// active domain.
    #[test]
    fn rcdp_verdicts_certify(db in arb_db(), extra in arb_db(), qi in 0usize..6) {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mschema = Schema::from_relations(
            vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let m = mschema.rel_id("M").unwrap();
        let mut dm = Database::empty(&mschema);
        for v in 0..6i64 {
            dm.insert(m, Tuple::new([Value::int(v)]));
        }
        // Both R columns bounded by master data: every query over R is
        // value-bounded; S stays open.
        let v = ConstraintSet::new(vec![
            ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(r, vec![0])), m, vec![0]),
            ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(r, vec![1])), m, vec![0]),
        ]);
        let setting = Setting::new(s.clone(), mschema, dm, v);
        let q: Query = queries()[qi].clone().into();
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        match verdict {
            Verdict::Incomplete(ce) => {
                prop_assert!(ric::complete::rcdp::certify_counterexample(
                    &setting, &q, &db, &ce).unwrap());
            }
            Verdict::Complete => {
                // Probe: no random extension that stays partially closed may
                // change the answer.
                let before: BTreeSet<Tuple> = q.eval(&db).unwrap();
                let probe = db.union(&extra).unwrap();
                if setting.partially_closed(&probe).unwrap() {
                    prop_assert_eq!(q.eval(&probe).unwrap(), before);
                }
            }
            Verdict::Unknown { .. } => {}
        }
    }

    /// The exact Σᵖ₂ decider agrees with the doubly exponential brute-force
    /// reference on tiny instances (Proposition 3.3's small-model property).
    #[test]
    fn rcdp_agrees_with_brute_force(r_tuples in proptest::collection::vec((0i64..2, 0i64..2), 0..3)) {
        let s = Schema::from_relations(
            vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mschema = Schema::from_relations(
            vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let m = mschema.rel_id("M").unwrap();
        let mut dm = Database::empty(&mschema);
        dm.insert(m, Tuple::new([Value::int(0)]));
        dm.insert(m, Tuple::new([Value::int(1)]));
        let v = ConstraintSet::new(vec![
            ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(r, vec![0])), m, vec![0]),
            ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(r, vec![1])), m, vec![0]),
        ]);
        let setting = Setting::new(s.clone(), mschema, dm, v);
        let mut db = Database::empty(&s);
        for (a, b) in r_tuples {
            db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
        }
        let q: Query = parse_cq(&s, "Q(X, Y) :- R(X, Y).").unwrap().into();
        let exact = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        let brute = ric::complete::characterize::brute_force_complete(
            &setting, &q, &db, 1, 10).unwrap();
        if let Some(expected) = brute {
            prop_assert_eq!(exact.is_complete(), expected);
        }
    }

    /// RCQP `Nonempty` witnesses are certified complete by RCDP.
    #[test]
    fn rcqp_witnesses_certify(n_master in 1usize..4) {
        let s = Schema::from_relations(
            vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mschema = Schema::from_relations(
            vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let m = mschema.rel_id("M").unwrap();
        let mut dm = Database::empty(&mschema);
        for v in 0..n_master as i64 {
            dm.insert(m, Tuple::new([Value::int(v)]));
        }
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![1])), m, vec![0],
        )]);
        let setting = Setting::new(s.clone(), mschema, dm, v);
        let q: Query = parse_cq(&s, "Q(Y) :- R('k', Y).").unwrap().into();
        match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
            QueryVerdict::Nonempty { witness: Some(w) } => {
                prop_assert_eq!(
                    rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                    Verdict::Complete
                );
            }
            QueryVerdict::Nonempty { witness: None } => {}
            other => prop_assert!(false, "expected nonempty, got {:?}", other),
        }
    }
}

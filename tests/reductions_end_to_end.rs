//! The hardness constructions, end to end: generate instances from the
//! source problems, decide them with the `ric-complete` deciders, and check
//! against the independent oracles.

use ric::prelude::*;
use ric::reductions::{qbf, rcdp_sigma2, rcqp_conp, sat, tiling, two_head_dfa};

/// Theorem 3.6: the ∀*∃*-3SAT reduction to RCDP(CQ, INDs) agrees with the
/// brute-force QBF oracle.
#[test]
fn sigma2_reduction_matches_oracle() {
    let mut rng = ric::SplitMix64::seed_from_u64(100);
    for _ in 0..6 {
        let phi = qbf::ForallExists::random(2, 2, 3, &mut rng);
        let truth = phi.eval();
        let (setting, q, db) = rcdp_sigma2::to_rcdp_instance(&phi);
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        assert_eq!(verdict.is_complete(), truth, "disagree on {phi:?}");
        if let Verdict::Incomplete(ce) = &verdict {
            assert!(
                ric::complete::rcdp::certify_counterexample(&setting, &q, &db, ce).unwrap(),
                "counterexample must certify"
            );
        }
    }
}

/// Theorem 4.5(1): the 3SAT reduction to RCQP(CQ, INDs) complements DPLL.
#[test]
fn conp_reduction_matches_dpll() {
    let mut rng = ric::SplitMix64::seed_from_u64(101);
    for n_clauses in [2, 5, 9, 14] {
        let phi = sat::Cnf::random_3sat(3, n_clauses, &mut rng);
        let (setting, q) = rcqp_conp::to_rcqp_instance(&phi);
        let verdict = rcqp(&setting, &q, &SearchBudget::default()).unwrap();
        assert_eq!(
            verdict.is_empty_verdict(),
            phi.satisfiable(),
            "disagree on {phi:?}"
        );
    }
}

/// Theorem 4.5(2): tiling witnesses round-trip through the construction —
/// solvable instances yield a certified complete database, and tampering
/// with the witness is caught.
#[test]
fn tiling_reduction_witness_roundtrip() {
    // Solvable 2×2 and 4×4 instances.
    for (inst, label) in [
        (tiling::TilingInstance::solvable_example(1), "trivial 2x2"),
        (
            tiling::TilingInstance {
                n_tiles: 2,
                horiz: [(0, 1), (1, 0)].into_iter().collect(),
                vert: [(0, 1), (1, 0)].into_iter().collect(),
                t0: 0,
                n: 2,
            },
            "checkerboard 4x4",
        ),
    ] {
        let grid = inst
            .solve()
            .unwrap_or_else(|| panic!("{label} should tile"));
        assert!(inst.check(&grid));
        let (setting, q) = tiling::to_rcqp_instance(&inst);
        let witness = tiling::tiling_witness(&setting.schema, &inst, &grid);
        assert!(setting.partially_closed(&witness).unwrap(), "{label}");
        assert_eq!(
            rcdp(&setting, &q, &witness, &SearchBudget::default()).unwrap(),
            Verdict::Complete,
            "{label}: witness certified by the decidable RCDP check"
        );
        // Tamper: remove the Rb release and the database turns incomplete.
        let rb = setting.schema.rel_id("Rb").unwrap();
        let mut tampered = witness.clone();
        tampered
            .instance_mut(rb)
            .remove(&Tuple::new([Value::int(0)]));
        let verdict = rcdp(&setting, &q, &tampered, &SearchBudget::default()).unwrap();
        assert!(verdict.is_incomplete(), "{label}: Rb can still grow");
    }

    // Unsolvable instance: candidate databases stay incomplete.
    let bad = tiling::TilingInstance::unsolvable_example(1);
    assert!(bad.solve().is_none());
    let (setting, q) = tiling::to_rcqp_instance(&bad);
    let db = Database::empty(&setting.schema);
    assert!(rcdp(&setting, &q, &db, &SearchBudget::default())
        .unwrap()
        .is_incomplete());
}

/// Theorems 3.1(3)/4.1: the 2-head DFA reduction behaves as the
/// undecidability argument predicts — nonempty languages produce certified
/// incompleteness witnesses, empty languages leave the bounded search
/// honestly undecided.
#[test]
fn two_head_dfa_reduction_end_to_end() {
    let budget = SearchBudget {
        max_delta_tuples: 3,
        fresh_values: 2,
        max_candidates: 300_000,
        ..SearchBudget::default()
    };
    let (setting, q, db) = two_head_dfa::to_rcdp_instance(&two_head_dfa::TwoHeadDfa::ones());
    match rcdp(&setting, &q, &db, &budget).unwrap() {
        Verdict::Incomplete(ce) => {
            assert!(ric::complete::rcdp::certify_counterexample(&setting, &q, &db, &ce).unwrap());
            // The witness extension encodes an accepted word: exactly the
            // tuples of encode_word("1").
            assert_eq!(ce.delta.tuple_count(), 3);
        }
        other => panic!("expected incomplete, got {other:?}"),
    }

    let (setting, q, db) =
        two_head_dfa::to_rcdp_instance(&two_head_dfa::TwoHeadDfa::empty_language());
    assert!(matches!(
        rcdp(&setting, &q, &db, &budget).unwrap(),
        Verdict::Unknown { .. }
    ));
}

/// The FP query of the DFA reduction is *equivalent to the automaton* on
/// encoded words — the semantic heart of Theorem 3.1(3).
#[test]
fn dfa_fp_query_equals_automaton_on_words() {
    let dfa = two_head_dfa::TwoHeadDfa::ones();
    let schema = two_head_dfa::reduction_schema();
    let program = two_head_dfa::reachability_program(&schema, &dfa);
    for len in 0..=4usize {
        for mask in 0..(1u32 << len) {
            let word: Vec<bool> = (0..len).map(|i| mask & (1 << i) != 0).collect();
            let db = two_head_dfa::encode_word(&schema, &word);
            assert_eq!(
                !program.eval(&db).is_empty(),
                dfa.accepts(&word),
                "disagreement on {word:?}"
            );
        }
    }
}

/// The Σᵖ₂ instances are *fixed-master, fixed-constraints* (Corollary 3.7):
/// the same `(D_m, V)` serves every formula of a given size.
#[test]
fn sigma2_master_and_constraints_are_fixed() {
    let mut rng = ric::SplitMix64::seed_from_u64(102);
    let phi1 = qbf::ForallExists::random(2, 2, 3, &mut rng);
    let phi2 = qbf::ForallExists::random(2, 2, 3, &mut rng);
    let (s1, _, d1) = rcdp_sigma2::to_rcdp_instance(&phi1);
    let (s2, _, d2) = rcdp_sigma2::to_rcdp_instance(&phi2);
    assert_eq!(s1.dm, s2.dm, "master data is formula-independent");
    assert_eq!(s1.v, s2.v, "constraints are formula-independent");
    assert_eq!(d1, d2, "the input database is formula-independent");
}

//! Integration tests for the telemetry layer: exact counters on
//! hand-computed instances, structured `SearchStats` on every `Unknown`
//! verdict, JSONL output that parses back, and `Display`-string stability
//! for the verdict types (log output must not change across revisions).

use ric::prelude::*;
use ric::telemetry::{json, JsonlSink};
use ric::{rcdp_probed, rcqp_probed, BudgetLimit, SearchStats};

/// Example 2.1 in miniature: Supt(eid, cid) with cid bounded by the master
/// customer list {c1, c2}; the database only knows e0 supports c1.
fn master_bounded_instance() -> (Setting, Query, Database) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(dcust, Tuple::new([Value::str("c1")]));
    dm.insert(dcust, Tuple::new([Value::str("c2")]));
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));
    (setting, q, db)
}

#[test]
fn rcdp_counters_match_hand_computation() {
    let (setting, q, db) = master_bounded_instance();
    let collector = Collector::new();
    let v = rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector),
    )
    .unwrap();
    assert!(v.is_incomplete(), "c2 can still be collected");

    let report = collector.report();
    // The exact decider evaluates Q(D) once up front.
    assert_eq!(report.counter("rcdp.query_evals"), 1);
    // The delta tableau has one atom Supt('e0', C) with one variable; the
    // enumeration tries candidate values for C from the active domain and
    // stops at the first violating valuation. The valuation count equals
    // what the shared enumeration space reports.
    let valuations = report.counter("rcdp.valuations");
    assert!(valuations >= 1, "at least one valuation must be examined");
    assert_eq!(report.counter("valuations.assignments"), valuations);
    // Each examined valuation is checked against the constraints at most
    // twice (partial filter + final visit).
    let cc_checks = report.counter("rcdp.cc_checks");
    assert!(
        cc_checks >= 1 && cc_checks <= 2 * valuations,
        "cc_checks: {cc_checks}"
    );

    // Structured decision notes: one strategy, one outcome, emitted once.
    assert_eq!(report.notes("rcdp.strategy"), vec!["exact".to_string()]);
    assert_eq!(report.notes("rcdp.outcome"), vec!["incomplete".to_string()]);
    // The active domain: e0, c1 (db) + c2 (master) + the query constant e0
    // + fresh padding; the gauge must cover at least those three values.
    assert!(report.gauge("rcdp.adom_size").unwrap() >= 3);
    // Span timings exist for the enumeration phase.
    assert!(report.span_micros("rcdp.enumerate").is_some());
}

#[test]
fn rcdp_unknown_names_the_exhausted_limit() {
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget {
        max_valuations: 0,
        ..SearchBudget::default()
    };
    let collector = Collector::new();
    let v = rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&collector)).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::MaxValuations);
            // Meter counts accepted work only: never more than the limit.
            assert_eq!(stats.valuations, 0);
            assert_eq!(stats.detail, "valuation budget of 0 exhausted");
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    let report = collector.report();
    assert_eq!(report.notes("rcdp.outcome"), vec!["unknown".to_string()]);
    assert_eq!(
        report.notes("rcdp.limit"),
        vec!["max_valuations".to_string()]
    );
    assert_eq!(report.counter("rcdp.valuations"), 0);
}

#[test]
fn rcqp_counters_and_outcome_notes() {
    // Example 4.1: FD eid → dept blocks every extension mentioning e0, so a
    // blocking witness exists and RCQ is nonempty.
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let fd = Fd::new(supt, vec![0], vec![1]);
    let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.")
        .unwrap()
        .into();
    let budget = SearchBudget {
        fresh_values: 3,
        ..SearchBudget::default()
    };

    let collector = Collector::new();
    let verdict = rcqp_probed(&setting, &q, &budget, Probe::attached(&collector)).unwrap();
    assert!(verdict.is_nonempty());

    let report = collector.report();
    assert_eq!(report.notes("rcqp.outcome"), vec!["nonempty".to_string()]);
    assert_eq!(
        report.notes("rcqp.strategy").len(),
        1,
        "exactly one strategy note"
    );
    if let QueryVerdict::Nonempty { witness: Some(w) } = &verdict {
        assert_eq!(
            report.gauge("rcqp.witness_tuples"),
            Some(w.tuple_count() as u64)
        );
    }
}

#[test]
fn rcqp_unknown_carries_structured_stats() {
    // An FP query forces the bounded semi-decision; with a candidate budget
    // of zero the search cannot examine anything, and the verdict must say
    // which knob ran out.
    use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
    let (setting, q, _db) = to_rcdp_instance(&TwoHeadDfa::ones());
    let budget = SearchBudget {
        max_delta_tuples: 2,
        fresh_values: 1,
        max_candidates: 0,
        ..SearchBudget::default()
    };

    let collector = Collector::new();
    let verdict = rcqp_probed(&setting, &q, &budget, Probe::attached(&collector)).unwrap();
    match &verdict {
        QueryVerdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::MaxCandidates);
            assert_eq!(stats.candidates, 0, "no candidate was actually examined");
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    let report = collector.report();
    assert_eq!(report.notes("rcqp.outcome"), vec!["unknown".to_string()]);
    assert_eq!(
        report.notes("rcqp.limit"),
        vec!["max_candidates".to_string()]
    );
    assert_eq!(report.notes("rcqp.strategy"), vec!["bounded".to_string()]);
}

#[test]
fn collector_reports_are_deterministic() {
    let (setting, q, db) = master_bounded_instance();
    let run = || {
        let collector = Collector::new();
        rcdp_probed(
            &setting,
            &q,
            &db,
            &SearchBudget::default(),
            Probe::attached(&collector),
        )
        .unwrap();
        collector.report()
    };
    let (a, b) = (run(), run());
    // Wall-clock spans differ between runs; everything else is exact.
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.gauges, b.gauges);
    assert_eq!(a.notes, b.notes);
}

#[test]
fn jsonl_stream_is_parseable_line_delimited_json() {
    let (setting, q, db) = master_bounded_instance();
    let sink = JsonlSink::new(Vec::new());
    rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&sink),
    )
    .unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert!(!text.is_empty());
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let doc = json::parse(line).expect("every line is a complete JSON document");
        let kind = doc
            .get("kind")
            .and_then(ric::telemetry::Json::as_str)
            .unwrap();
        assert!(
            ["count", "gauge", "span", "note"].contains(&kind),
            "kind: {kind}"
        );
        assert!(doc
            .get("name")
            .and_then(ric::telemetry::Json::as_str)
            .is_some());
        kinds.insert(kind.to_string());
    }
    // A full decision emits at least counters, notes, and spans.
    assert!(kinds.contains("count") && kinds.contains("note") && kinds.contains("span"));
}

#[test]
fn verdict_display_strings_are_stable() {
    // These strings are the crate's log/CLI surface; they predate the
    // structured SearchStats and must not drift.
    assert_eq!(Verdict::Complete.to_string(), "complete");

    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mut delta = Database::empty(&schema);
    delta.insert(supt, Tuple::new([Value::str("e0"), Value::str("c2")]));
    let ce = CounterExample {
        delta,
        new_answer: Tuple::new([Value::str("c2")]),
    };
    assert_eq!(
        Verdict::Incomplete(ce).to_string(),
        "incomplete (adding 1 tuple(s) yields new answer (c2))"
    );

    assert_eq!(
        Verdict::unknown(SearchStats::new(
            BudgetLimit::MaxValuations,
            "valuation budget of 100000 exhausted",
        ))
        .to_string(),
        "unknown (valuation budget of 100000 exhausted)"
    );

    // End-to-end: the decider's own Unknown prints the legacy wording.
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget {
        max_valuations: 0,
        ..SearchBudget::default()
    };
    let v = rcdp(&setting, &q, &db, &budget).unwrap();
    assert_eq!(v.to_string(), "unknown (valuation budget of 0 exhausted)");
}

#[test]
fn budget_limit_names_are_stable() {
    // The machine-readable names feed telemetry notes and BENCH_TABLE*.json;
    // renaming one is a breaking change for downstream tooling.
    let all = [
        (BudgetLimit::MaxValuations, "max_valuations"),
        (BudgetLimit::MaxCandidates, "max_candidates"),
        (BudgetLimit::MaxDeltaTuples, "max_delta_tuples"),
        (BudgetLimit::MaxWitnessTuples, "max_witness_tuples"),
        (BudgetLimit::FreshValues, "fresh_values"),
        (BudgetLimit::PoolBound, "pool_bound"),
        (BudgetLimit::Unsupported, "unsupported"),
        (BudgetLimit::Deadline, "deadline"),
        (BudgetLimit::Cancelled, "cancelled"),
    ];
    for (limit, name) in all {
        assert_eq!(limit.name(), name);
        assert_eq!(limit.to_string(), name);
    }
}

#[test]
fn interrupt_events_round_trip_through_jsonl() {
    // A fault-injected deadline produces an `interrupt` event alongside the
    // normal stream, and the whole stream still parses line-by-line.
    use ric::{FaultPlan, Guard};
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(0));
    let sink = JsonlSink::new(Vec::new());
    let v = ric::rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::attached(&sink)).unwrap();
    match &v {
        Verdict::Unknown { stats } => assert_eq!(stats.limit, BudgetLimit::Deadline),
        other => panic!("expected unknown, got {other:?}"),
    }
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let mut saw_interrupt = false;
    for line in text.lines() {
        let doc = json::parse(line).expect("every line is a complete JSON document");
        let kind = doc
            .get("kind")
            .and_then(ric::telemetry::Json::as_str)
            .unwrap();
        assert!(
            ["count", "gauge", "span", "note", "interrupt"].contains(&kind),
            "kind: {kind}"
        );
        if kind == "interrupt" {
            saw_interrupt = true;
            assert_eq!(
                doc.get("reason").and_then(ric::telemetry::Json::as_str),
                Some("deadline")
            );
        }
    }
    assert!(saw_interrupt, "the interrupt event must reach the sink");
}

#[test]
fn interrupted_reports_serialize_the_interrupt_records() {
    use ric::{FaultPlan, Guard};
    let (setting, q, db) = master_bounded_instance();
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().cancel_at_tick(0));
    let collector = Collector::new();
    let v = ric::rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Cancelled);
            assert_eq!(stats.detail, "cancelled after 0 valuation(s)");
        }
        other => panic!("expected unknown, got {other:?}"),
    }
    let report = collector.report();
    assert_eq!(report.interrupts.len(), 1);
    assert_eq!(report.interrupts[0].reason, "cancelled");
    // The JSON artifact includes the interrupts array.
    let doc = json::parse(&report.to_json().to_string()).unwrap();
    let interrupts = doc.get("interrupts").expect("interrupts key is present");
    assert_eq!(
        interrupts.as_arr().map(<[ric::telemetry::Json]>::len),
        Some(1)
    );
}

/// The planned engine's `plan.*` counters and `stats.rows.NN` statistics
/// gauges export through the [`Metrics`] registry, and merging the
/// per-worker-count registries in either order produces byte-identical
/// Prometheus-text and JSON snapshots — the same bit-identical-merge
/// guarantee the counter layer pins.
#[test]
fn plan_counters_and_stats_gauges_export_through_metrics_snapshots() {
    use ric::Metrics;

    // A CQ-bodied constraint (a join), so the planned engine compiles plans;
    // pure-IND sets take the containment fast path and plan nothing.
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
        RelationSchema::infinite("Dept", &["dept"]),
    ])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let dept = schema.rel_id("Dept").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(dcust, Tuple::new([Value::str("c1")]));
    dm.insert(dcust, Tuple::new([Value::str("c2")]));
    let body = parse_cq(&schema, "Q(C) :- Supt(E, D, C), Dept(D).").unwrap();
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(body),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();
    let mut db = Database::empty(&schema);
    db.insert(dept, Tuple::new([Value::str("d0")]));
    db.insert(
        supt,
        Tuple::new([Value::str("e0"), Value::str("d0"), Value::str("c1")]),
    );

    // One registry per worker count, as a sharded service would keep them.
    let mut registries = Vec::new();
    for workers in [1usize, 4] {
        let collector = Collector::new();
        let budget = SearchBudget::default().with_engine(Engine::planned(workers));
        rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&collector)).unwrap();
        let mut m = Metrics::new();
        m.absorb_report(&collector.report());
        assert!(
            m.counter("plan.compile") >= 1,
            "planned decisions export plan.compile"
        );
        registries.push(m);
    }

    let mut ab = registries[0].clone();
    ab.merge(&registries[1]);
    let mut ba = registries[1].clone();
    ba.merge(&registries[0]);
    assert_eq!(ab, ba, "metrics merge is order-independent");

    let prom = ab.to_prometheus();
    assert_eq!(prom, ba.to_prometheus(), "Prometheus snapshots byte-match");
    assert_eq!(
        ab.to_json().to_string(),
        ba.to_json().to_string(),
        "JSON snapshots byte-match"
    );

    // Both exporters carry the plan counters and the statistics gauges.
    assert!(prom.contains("ric_counter_total{name=\"plan.compile\"} 2"));
    assert!(prom.contains("ric_counter_total{name=\"plan.cost\"}"));
    // Two body relations with ids 0 and 1, one tuple each.
    assert!(prom.contains("ric_gauge{name=\"stats.rows.00\"} 1"));
    assert!(prom.contains("ric_gauge{name=\"stats.rows.01\"} 1"));
    let doc = json::parse(&ab.to_json().to_string()).unwrap();
    let counters = doc.get("counters").expect("counters key");
    assert_eq!(
        counters
            .get("plan.compile")
            .and_then(ric::telemetry::Json::as_int),
        Some(2)
    );
    let gauges = doc.get("gauges").expect("gauges key");
    assert_eq!(
        gauges
            .get("stats.rows.00")
            .and_then(ric::telemetry::Json::as_int),
        Some(1)
    );
}

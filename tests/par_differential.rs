//! Differential testing of the parallel scheduler: `Engine::Parallel` must
//! return the *same verdict and the same telemetry-visible witness* as the
//! sequential engines, at every worker count and under every chunk-claim
//! schedule.
//!
//! The suite covers:
//!
//! * RCDP / RCQP / bounded-search verdict agreement across
//!   `Engine::Parallel { workers }` for workers ∈ {1, 2, 4, 7} (overridable
//!   with `RIC_WORKERS=a,b,…` — the CI worker matrix uses it) versus
//!   `Engine::Indexed` and `Engine::Naive`;
//! * exact equality of the decision-level telemetry counters between the
//!   parallel and the indexed engine on decided runs — the scheduler's
//!   "sums stop at the deciding chunk" merge makes them bit-identical;
//! * schedule independence: seeded permutations of the chunk *claim order*
//!   (via `ric::complete::sched_test`) must not change verdicts, witnesses,
//!   or counters;
//! * fault injection mid-fan-out: a cancellation or deadline trip on one
//!   worker must surface as the matching `Unknown` limit on the merged
//!   verdict, with the pre-fault telemetry intact;
//! * per-thread probe isolation: two concurrent decisions must not see each
//!   other's `index.probe` counts (the regression test for the counter that
//!   was process-global).

use ric::prelude::*;
use ric::SplitMix64;

/// Fixed two-relation schema for the generators: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

/// A random database over `schema()` with values drawn from `0..vals`.
fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// A pool of CQs exercising joins, constants, self-joins, and inequalities.
fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(X) :- R(X, 3).",
        "Q() :- R(1, X), S(X).",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// A random constraint setting: `R`'s first column bounded by master `M`,
/// `S` bounded by master `N`.
fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

/// Worker counts under test: `RIC_WORKERS=a,b,…` when set (the CI matrix
/// exports it), otherwise {1, 2, 4, 7} — below, at, and beyond the typical
/// chunk count, plus an odd count that never divides it.
fn worker_counts() -> Vec<usize> {
    match std::env::var("RIC_WORKERS") {
        Ok(spec) => spec
            .split(',')
            .map(|w| w.trim().parse().expect("RIC_WORKERS must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 7],
    }
}

/// The telemetry counters whose totals the parallel merge reproduces
/// bit-identically on decided RCDP runs.
const RCDP_COUNTERS: [&str; 5] = [
    "rcdp.valuations",
    "rcdp.cc_checks",
    "cc.skipped_by_delta",
    "index.probe",
    "valuations.assignments",
];

/// RCDP: every worker count must reproduce the sequential verdict, the same
/// counterexample, and the same decision counters.
#[test]
fn rcdp_parallel_matches_sequential_verdicts_and_witnesses() {
    let mut rng = SplitMix64::seed_from_u64(0x7777);
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let mut decided = 0usize;
    for round in 0..25 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vn = rcdp(&setting, &q, &db, &naive).unwrap();
            let seq_collector = Collector::new();
            let vi =
                rcdp_probed(&setting, &q, &db, &indexed, Probe::attached(&seq_collector)).unwrap();
            let seq_report = seq_collector.report();
            for workers in worker_counts() {
                let budget = SearchBudget::default().with_engine(Engine::parallel(workers));
                let collector = Collector::new();
                let vp =
                    rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&collector)).unwrap();
                let report = collector.report();
                match (&vi, &vp) {
                    (Verdict::Complete, Verdict::Complete) => {}
                    (Verdict::Incomplete(a), Verdict::Incomplete(b)) => {
                        assert_eq!(
                            (&a.delta, &a.new_answer),
                            (&b.delta, &b.new_answer),
                            "parallel witness differs from sequential \
                             (round {round}, query {qi}, workers {workers})"
                        );
                        assert!(
                            ric::complete::rcdp::certify_counterexample(&setting, &q, &db, b)
                                .unwrap(),
                            "uncertified parallel counterexample \
                             (round {round}, query {qi}, workers {workers})"
                        );
                    }
                    other => panic!(
                        "parallel and indexed disagree \
                         (round {round}, query {qi}, workers {workers}): {other:?}"
                    ),
                }
                assert_eq!(
                    std::mem::discriminant(&vn),
                    std::mem::discriminant(&vp),
                    "parallel and naive disagree (round {round}, query {qi}, workers {workers})"
                );
                for name in RCDP_COUNTERS {
                    assert_eq!(
                        seq_report.counter(name),
                        report.counter(name),
                        "counter {name} diverges \
                         (round {round}, query {qi}, workers {workers})"
                    );
                }
            }
            decided += 1;
        }
    }
    assert!(
        decided >= 40,
        "too few partially closed instances generated ({decided})"
    );
}

/// Seeded permutations of the chunk claim order must not change anything:
/// not the verdict, not the witness, not a single decision counter.
#[test]
fn rcdp_parallel_is_schedule_independent() {
    let mut rng = SplitMix64::seed_from_u64(0xA5A5);
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let mut compared = 0usize;
    for _ in 0..10 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for cq in cq_pool() {
            let q: Query = cq.into();
            let baseline_collector = Collector::new();
            let baseline = rcdp_probed(
                &setting,
                &q,
                &db,
                &budget,
                Probe::attached(&baseline_collector),
            )
            .unwrap();
            let baseline_report = baseline_collector.report();
            for seed in 0..8 {
                let collector = Collector::new();
                let v = ric::complete::sched_test::with_schedule(seed, || {
                    rcdp_probed(&setting, &q, &db, &budget, Probe::attached(&collector))
                })
                .unwrap();
                assert_eq!(baseline, v, "verdict changed under schedule seed {seed}");
                let report = collector.report();
                for name in RCDP_COUNTERS {
                    assert_eq!(
                        baseline_report.counter(name),
                        report.counter(name),
                        "counter {name} changed under schedule seed {seed}"
                    );
                }
                compared += 1;
            }
        }
    }
    assert!(compared >= 80, "too few schedule comparisons ({compared})");
}

/// RCQP: verdict kinds agree across all engines and worker counts (witness
/// databases may legitimately differ only in fresh-value naming, so the
/// comparison is by discriminant plus witness certification, which
/// `rcqp` already performs internally before reporting one).
#[test]
fn rcqp_parallel_agrees_with_sequential_engines() {
    let mut rng = SplitMix64::seed_from_u64(0x9999);
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    for round in 0..8 {
        let setting = random_setting(&mut rng);
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vn = rcqp(&setting, &q, &naive).unwrap();
            let vi = rcqp(&setting, &q, &indexed).unwrap();
            for workers in worker_counts() {
                let budget = SearchBudget::default().with_engine(Engine::parallel(workers));
                let vp = rcqp(&setting, &q, &budget).unwrap();
                assert_eq!(
                    std::mem::discriminant(&vi),
                    std::mem::discriminant(&vp),
                    "RCQP parallel vs indexed diverge \
                     (round {round}, query {qi}, workers {workers}): {vi:?} vs {vp:?}"
                );
                assert_eq!(
                    std::mem::discriminant(&vn),
                    std::mem::discriminant(&vp),
                    "RCQP parallel vs naive diverge \
                     (round {round}, query {qi}, workers {workers}): {vn:?} vs {vp:?}"
                );
            }
        }
    }
}

/// FO routes through the bounded semi-decision; its sharded subset search
/// must agree with the sequential engines at every worker count.
#[test]
fn bounded_search_parallel_agrees_with_sequential_engines() {
    let s = schema();
    let srel = s.rel_id("S").unwrap();
    let x = ric::query::Var(0);
    // Q() := ¬∃x S(x): any added S tuple flips the answer, so most instances
    // decide quickly and exercise the earliest-hit merge.
    let fo = ric::query::FoQuery::new(
        vec![],
        ric::query::FoExpr::not(ric::query::FoExpr::Exists(
            vec![x],
            Box::new(ric::query::FoExpr::Atom(ric::query::Atom::new(
                srel,
                vec![Term::Var(x)],
            ))),
        )),
        vec!["x".into()],
    );
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let mut rng = SplitMix64::seed_from_u64(0x1234);
    for round in 0..6 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 4, 2);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        let q = Query::Fo(fo.clone());
        let vn = rcdp(&setting, &q, &db, &naive).unwrap();
        let vi = rcdp(&setting, &q, &db, &indexed).unwrap();
        for workers in worker_counts() {
            let budget = SearchBudget::default().with_engine(Engine::parallel(workers));
            let vp = rcdp(&setting, &q, &db, &budget).unwrap();
            for (label, seq) in [("naive", &vn), ("indexed", &vi)] {
                assert_eq!(
                    std::mem::discriminant(seq),
                    std::mem::discriminant(&vp),
                    "bounded parallel vs {label} diverge \
                     (round {round}, workers {workers}): {seq:?} vs {vp:?}"
                );
            }
        }
    }
}

/// A blocked-but-wide instance the exact decider must fully enumerate: every
/// candidate extension is outside the master list, so no counterexample
/// exists, and the enumeration visits the whole valuation space.
fn wide_complete_instance() -> (Setting, Query, Database) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    for c in 0..12 {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    for c in 0..12 {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str(format!("c{c}"))]),
        );
    }
    (setting, q, db)
}

/// A fault-plan cancellation on a worker mid-fan-out must trip the whole
/// pool: the merged verdict reports the cancellation limit, and the
/// telemetry gathered before the fault survives into the report.
#[test]
fn cancellation_mid_fanout_trips_every_worker() {
    let (setting, q, db) = wide_complete_instance();
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let guard = Guard::new(&budget)
        .with_fault_plan(FaultPlan::new().cancel_at_tick(3))
        .with_check_interval(0);
    let collector = Collector::new();
    let v = rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Cancelled, "stats: {stats:?}");
            assert!(
                stats.detail.contains("cancelled after"),
                "detail must use the sequential wording: {}",
                stats.detail
            );
        }
        other => panic!("expected an interrupted Unknown, got {other:?}"),
    }
    let report = collector.report();
    assert!(
        report
            .interrupts
            .iter()
            .any(|i| i.name == "rcdp.interrupt" && i.reason == Interrupt::Cancelled.name()),
        "the interrupt must be recorded: {:?}",
        report.interrupts
    );
    // Pre-fault telemetry survives: the fan-out itself is visible, and the
    // decision notes report the unknown outcome.
    assert!(report.counter("par.chunk") >= 1, "no chunks recorded");
    assert_eq!(report.counter("rcdp.query_evals"), 1);
}

/// Same shape with a deadline fault: the merged verdict must name the
/// deadline limit even when sibling workers only observe the broadcast
/// cancellation.
#[test]
fn deadline_mid_fanout_is_reported_as_deadline() {
    let (setting, q, db) = wide_complete_instance();
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let guard = Guard::new(&budget)
        .with_fault_plan(FaultPlan::new().deadline_at_tick(3))
        .with_check_interval(0);
    let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
    match &v {
        Verdict::Unknown { stats } => {
            assert_eq!(stats.limit, BudgetLimit::Deadline, "stats: {stats:?}");
            assert!(
                stats.detail.contains("wall-clock deadline expired after"),
                "detail must use the sequential wording: {}",
                stats.detail
            );
        }
        other => panic!("expected an interrupted Unknown, got {other:?}"),
    }
}

/// An already-cancelled guard stops the fan-out before any real work, at
/// every worker count.
#[test]
fn pre_cancelled_guard_stops_the_parallel_fanout() {
    let (setting, q, db) = wide_complete_instance();
    for workers in worker_counts() {
        let budget = SearchBudget::default().with_engine(Engine::parallel(workers));
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::new(&budget)
            .with_cancel(token)
            .with_check_interval(0);
        let v = rcdp_guarded(&setting, &q, &db, &budget, &guard, Probe::disabled()).unwrap();
        match &v {
            Verdict::Unknown { stats } => {
                assert_eq!(stats.limit, BudgetLimit::Cancelled, "workers {workers}");
            }
            other => panic!("expected cancellation (workers {workers}), got {other:?}"),
        }
    }
}

/// Pins the `Report::merge` semantics the parallel scheduler and the metrics
/// exporter both rely on, exercised with real `Engine::Parallel` event
/// streams: counters and spans *sum* (a merged span column reads as total
/// work time, not wall time), gauges keep the *max*, notes append, and
/// re-merging the same interrupt stream does not duplicate it — only a
/// genuinely distinct interrupt record appends.
#[test]
fn report_merge_semantics_are_pinned_under_parallel_runs() {
    let (setting, q, db) = wide_complete_instance();
    let supt = setting.schema.rel_id("Supt").unwrap();
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let run = |setting: &Setting, db: &Database| {
        let collector = Collector::new();
        rcdp_probed(setting, &q, db, &budget, Probe::attached(&collector)).unwrap();
        collector.report()
    };
    // Two runs over different instance sizes — the small one gets its own
    // one-customer master, so the adom gauge differs and the max rule is
    // observable (equal inputs would pin nothing).
    let big = run(&setting, &db);
    let small = {
        let mschema =
            Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        let dcust = mschema.rel_id("DCust").unwrap();
        let mut dm = Database::empty(&mschema);
        dm.insert(dcust, Tuple::new([Value::str("c0")]));
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(supt, vec![1])),
            dcust,
            vec![0],
        )]);
        let small_setting = Setting::new(setting.schema.clone(), mschema, dm, v);
        let mut small_db = Database::empty(&small_setting.schema);
        small_db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c0")]));
        run(&small_setting, &small_db)
    };
    let (gauge_big, gauge_small) = (
        big.gauge("rcdp.adom_size").expect("gauge on the big run"),
        small
            .gauge("rcdp.adom_size")
            .expect("gauge on the small run"),
    );
    assert!(
        gauge_small < gauge_big,
        "the two runs must disagree on the gauge for the max rule to show \
         ({gauge_small} vs {gauge_big})"
    );

    let mut merged = big.clone();
    merged.merge(&small);
    for name in RCDP_COUNTERS {
        assert_eq!(
            merged.counter(name),
            big.counter(name) + small.counter(name),
            "counter {name} must sum under merge"
        );
    }
    for (name, micros) in &merged.spans {
        let expect = big.span_micros(name).unwrap_or(0) + small.span_micros(name).unwrap_or(0);
        assert_eq!(*micros, expect, "span {name} must sum under merge");
    }
    assert_eq!(
        merged.gauge("rcdp.adom_size"),
        Some(gauge_big),
        "gauges must keep the max under merge"
    );
    assert_eq!(
        merged.notes("rcdp.outcome").len(),
        big.notes("rcdp.outcome").len() + small.notes("rcdp.outcome").len(),
        "notes must append under merge"
    );

    // Interrupt dedup: a cancelled parallel fan-out records the interrupt;
    // folding the same report in again must not duplicate it, while a
    // record differing in any field must append.
    let guard = Guard::new(&budget)
        .with_fault_plan(FaultPlan::new().cancel_at_tick(3))
        .with_check_interval(0);
    let collector = Collector::new();
    rcdp_guarded(
        &setting,
        &q,
        &db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .unwrap();
    let cancelled = collector.report();
    let recorded = cancelled.interrupts.len();
    assert!(recorded >= 1, "the cancellation must be recorded");
    let mut remerged = cancelled.clone();
    remerged.merge(&cancelled);
    assert_eq!(
        remerged.interrupts.len(),
        recorded,
        "exact-duplicate interrupts must dedup under merge"
    );
    let mut shifted = cancelled.clone();
    for record in &mut shifted.interrupts {
        record.at_tick += 1;
    }
    remerged.merge(&shifted);
    assert_eq!(
        remerged.interrupts.len(),
        recorded + shifted.interrupts.len(),
        "distinct interrupt records must append under merge"
    );
}

/// The probe-isolation regression test: two decisions running concurrently
/// on two threads must each report exactly the `index.probe` count they
/// would report alone — the counter is per-thread, not process-global.
#[test]
fn concurrent_decisions_do_not_share_probe_counts() {
    // An FD-constrained instance: the non-IND constraint set selects the
    // delta-aware check mode, whose overlay evaluation probes the index.
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let fd = Fd::new(supt, vec![0], vec![1]);
    let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0').").unwrap().into();
    let mut db = Database::empty(&schema);
    for e in 0..4 {
        db.insert(
            supt,
            Tuple::new([Value::str(format!("e{e}")), Value::str("d0")]),
        );
    }
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let solo = {
        let collector = Collector::new();
        rcdp_probed(&setting, &q, &db, &indexed, Probe::attached(&collector)).unwrap();
        collector.report().counter("index.probe")
    };
    assert!(solo > 0, "the instance must exercise the index");
    let probes: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (setting, q, db, budget) = (&setting, &q, &db, &indexed);
                s.spawn(move || {
                    let collector = Collector::new();
                    rcdp_probed(setting, q, db, budget, Probe::attached(&collector)).unwrap();
                    collector.report().counter("index.probe")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, p) in probes.iter().enumerate() {
        assert_eq!(
            *p, solo,
            "decision {i} saw foreign probes: {p} vs solo {solo}"
        );
    }
    // The same isolation must hold when the decisions themselves fan out.
    let parallel = SearchBudget::default().with_engine(Engine::parallel(3));
    let solo_par = {
        let collector = Collector::new();
        rcdp_probed(&setting, &q, &db, &parallel, Probe::attached(&collector)).unwrap();
        collector.report().counter("index.probe")
    };
    assert_eq!(
        solo_par, solo,
        "parallel index.probe must equal the sequential count"
    );
    let par_probes: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (setting, q, db, budget) = (&setting, &q, &db, &parallel);
                s.spawn(move || {
                    let collector = Collector::new();
                    rcdp_probed(setting, q, db, budget, Probe::attached(&collector)).unwrap();
                    collector.report().counter("index.probe")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, p) in par_probes.iter().enumerate() {
        assert_eq!(
            *p, solo,
            "parallel decision {i} saw foreign probes: {p} vs solo {solo}"
        );
    }
}

//! Differential testing of checkpoint/resume: a decision completed in K
//! installments must be verdict-, witness-, and counter-identical to one
//! uninterrupted run, at every engine and worker count.
//!
//! The schedule: measure the ticks T an uninterrupted decision needs, then
//! run installments at budgets `ceil(T·i/K)` (i = 1..K-1, each dying on its
//! meter and capturing a checkpoint) and finish at the full budget. Three
//! identities are pinned for every installment i with budget `b_i`:
//!
//! * the resumed installment equals a fresh `try_rcdp_resumed(…, None)` run
//!   at `b_i` — same verdict (including the `Unknown` detail string and
//!   stats), same scoped decision counters;
//! * both equal the *plain* `try_rcdp_probed` path at `b_i` — the resumable
//!   machinery may not disagree with the unsuspecting entry points;
//! * the checkpoint handed to installment i+1 survives a JSON round-trip
//!   (serialize → parse → resume), so resuming across a process boundary
//!   behaves identically to resuming in-memory.
//!
//! Counter scope: the decision-level counters the parallel scheduler already
//! guarantees bit-identical on decided runs (see `par_differential.rs`);
//! schedule-dependent `par.*` counters and the `valuations.max_depth` gauge
//! are excluded by the same reasoning as there.
//!
//! `RIC_RESUME_K` (comma-separated, default `2,5`) picks the installment
//! counts; `RIC_WORKERS` (default `1,2,4`) the parallel worker counts — the
//! CI matrix drives both.

use std::collections::BTreeMap;

use ric::prelude::*;
use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
use ric::reductions::{rcqp_conp, sat};
use ric::SplitMix64;

// ---------------------------------------------------------------------------
// Instances
// ---------------------------------------------------------------------------

fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// An FP query over the two-head DFA reduction, forcing the bounded
/// semi-decision with enough metered candidates to split into installments.
fn fp_bounded_instance() -> (Setting, Query, Database) {
    to_rcdp_instance(&TwoHeadDfa::ones())
}

/// The candidate-bounded budget the bounded cells run under (the Table I
/// (FP, CQ) shape the benches use).
fn fp_bounded_budget() -> SearchBudget {
    SearchBudget {
        max_delta_tuples: 3,
        fresh_values: 2,
        max_candidates: 500_000,
        ..SearchBudget::default()
    }
}

/// An RCQP instance hard enough that a starved budget genuinely checkpoints:
/// the 3SAT coNP reduction at the largest Table II cell size.
fn rcqp_instance() -> (Setting, Query) {
    let mut rng = SplitMix64::seed_from_u64(13);
    let phi = sat::Cnf::random_3sat(8, 34, &mut rng);
    rcqp_conp::to_rcqp_instance(&phi)
}

// ---------------------------------------------------------------------------
// Matrix + scoped counters
// ---------------------------------------------------------------------------

fn worker_counts() -> Vec<usize> {
    match std::env::var("RIC_WORKERS") {
        Ok(spec) => spec
            .split(',')
            .map(|w| w.trim().parse().expect("RIC_WORKERS must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn installment_counts() -> Vec<u64> {
    match std::env::var("RIC_RESUME_K") {
        Ok(spec) => spec
            .split(',')
            .map(|k| k.trim().parse().expect("RIC_RESUME_K must be integers"))
            .collect(),
        Err(_) => vec![2, 5],
    }
}

fn engines() -> Vec<Engine> {
    let mut out = vec![Engine::Naive, Engine::Indexed];
    for workers in worker_counts() {
        out.push(Engine::Parallel { workers });
        out.push(Engine::Planned { workers });
    }
    out
}

/// Decision-level counters compared bit-identically on the exact path.
const EXACT_COUNTERS: [&str; 5] = [
    "rcdp.valuations",
    "rcdp.cc_checks",
    "cc.skipped_by_delta",
    "index.probe",
    "valuations.assignments",
];

/// Decision-level counters compared on the bounded path.
const BOUNDED_COUNTERS: [&str; 5] = [
    "semidecide.candidates",
    "semidecide.cc_checks",
    "semidecide.query_evals",
    "cc.skipped_by_delta",
    "index.probe",
];

fn scoped(report: &Report, names: &[&'static str]) -> BTreeMap<&'static str, u64> {
    names
        .iter()
        .filter_map(|&n| report.counters.get(n).map(|&v| (n, v)))
        .collect()
}

struct Observed {
    verdict: Verdict,
    counters: BTreeMap<&'static str, u64>,
    checkpoint: Option<Checkpoint>,
}

/// One resumed run under a collector, scoped to `names`.
fn run_resumed(
    setting: &Setting,
    q: &Query,
    db: &Database,
    budget: &SearchBudget,
    prior: Option<&Checkpoint>,
    names: &[&'static str],
) -> Observed {
    let collector = Collector::new();
    let r = try_rcdp_resumed_probed(setting, q, db, budget, Probe::attached(&collector), prior)
        .expect("resumed decision must not error");
    Observed {
        verdict: r.decision.verdict,
        counters: scoped(&collector.report(), names),
        checkpoint: r.checkpoint,
    }
}

/// The plain (checkpoint-oblivious) path at the same budget.
fn run_plain(
    setting: &Setting,
    q: &Query,
    db: &Database,
    budget: &SearchBudget,
    names: &[&'static str],
) -> Observed {
    let collector = Collector::new();
    let d = try_rcdp_probed(setting, q, db, budget, Probe::attached(&collector))
        .expect("plain decision must not error");
    Observed {
        verdict: d.verdict,
        counters: scoped(&collector.report(), names),
        checkpoint: None,
    }
}

/// Ticks an uninterrupted run burns, read off the meter counter.
fn total_ticks(setting: &Setting, q: &Query, db: &Database, budget: &SearchBudget) -> u64 {
    let collector = Collector::new();
    let _ = try_rcdp_probed(setting, q, db, budget, Probe::attached(&collector))
        .expect("baseline must not error");
    let report = collector.report();
    let tick_counter = if report.counters.contains_key("semidecide.candidates") {
        "semidecide.candidates"
    } else {
        "rcdp.valuations"
    };
    report.counters.get(tick_counter).copied().unwrap_or(0)
}

/// Budget with the relevant meter limit set to `ticks`.
fn sliced(base: &SearchBudget, bounded: bool, ticks: u64) -> SearchBudget {
    let mut b = *base;
    if bounded {
        b.max_candidates = ticks.max(1);
    } else {
        b.max_valuations = ticks.max(1);
    }
    b
}

/// Drive one instance through the full K-installment schedule at one engine,
/// asserting the three identities at every step. Returns how many
/// installments actually ran.
fn check_schedule(
    label: &str,
    setting: &Setting,
    q: &Query,
    db: &Database,
    base: &SearchBudget,
    bounded: bool,
    k: u64,
) -> u64 {
    let names: &[&'static str] = if bounded {
        &BOUNDED_COUNTERS
    } else {
        &EXACT_COUNTERS
    };
    let t = total_ticks(setting, q, db, base);
    if t < k {
        // Not enough metered work to split into K distinct installments.
        return 0;
    }
    let baseline = run_plain(setting, q, db, base, names);

    let mut prior: Option<Checkpoint> = None;
    for i in 1..=k {
        let slice = if i == k {
            *base
        } else {
            sliced(base, bounded, (t * i).div_ceil(k))
        };
        let got = run_resumed(setting, q, db, &slice, prior.as_ref(), names);

        // Identity 1: resumed installment == fresh uninterrupted run at b_i.
        let fresh = run_resumed(setting, q, db, &slice, None, names);
        assert_eq!(
            got.verdict, fresh.verdict,
            "{label}: installment {i}/{k} verdict differs from uninterrupted run at its budget"
        );
        assert_eq!(
            got.counters, fresh.counters,
            "{label}: installment {i}/{k} counters differ from uninterrupted run at its budget"
        );

        // Identity 2: both == the plain entry point at b_i.
        let plain = run_plain(setting, q, db, &slice, names);
        assert_eq!(
            fresh.verdict, plain.verdict,
            "{label}: resumable entry at budget {i}/{k} differs from the plain entry point"
        );
        assert_eq!(
            fresh.counters, plain.counters,
            "{label}: resumable-entry counters at budget {i}/{k} differ from the plain entry point"
        );

        match got.checkpoint {
            Some(cp) => {
                assert_eq!(cp.attempt as u64, i, "{label}: attempt count");
                // Identity 3: the checkpoint survives JSON (process-boundary
                // resume behaves like in-memory resume).
                let round_tripped = Checkpoint::from_json_str(&cp.to_json().to_string())
                    .unwrap_or_else(|e| panic!("{label}: checkpoint round-trip failed: {e}"));
                assert_eq!(round_tripped, cp, "{label}: checkpoint JSON round-trip");
                prior = Some(round_tripped);
            }
            None => {
                // Conclusive — and identical to the uninterrupted (and plain)
                // run at this budget, per the assertions above. The final
                // installment runs at the full budget, so by transitivity it
                // matches the full-budget baseline.
                if i == k {
                    assert_eq!(got.verdict, baseline.verdict, "{label}: final verdict");
                    assert_eq!(got.counters, baseline.counters, "{label}: final counters");
                }
                return i;
            }
        }
    }
    panic!("{label}: the full-budget final installment must be conclusive");
}

// ---------------------------------------------------------------------------
// The suites
// ---------------------------------------------------------------------------

/// Exact RCDP across random CQ instances: the K-installment schedule is
/// identical to uninterrupted runs on every engine and worker count.
#[test]
fn exact_rcdp_installments_match_uninterrupted_runs() {
    let mut rng = SplitMix64::seed_from_u64(0x5e5e);
    let pool = cq_pool();
    let mut exercised = 0u64;
    for round in 0..10 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 6, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        let q: Query = pool[rng.random_range(0..pool.len())].clone().into();
        for engine in engines() {
            let base = SearchBudget::default().with_engine(engine);
            for k in installment_counts() {
                exercised += check_schedule(
                    &format!("round {round} engine {engine:?} K={k}"),
                    &setting,
                    &q,
                    &db,
                    &base,
                    false,
                    k,
                );
            }
        }
    }
    assert!(
        exercised >= 20,
        "the generator must produce instances with enough metered work ({exercised} installments ran)"
    );
}

/// Bounded (FP) RCDP: the size-granular frontier obeys the same identities.
#[test]
fn bounded_rcdp_installments_match_uninterrupted_runs() {
    let (setting, q, db) = fp_bounded_instance();
    for engine in engines() {
        let base = fp_bounded_budget().with_engine(engine);
        for k in installment_counts() {
            let ran = check_schedule(
                &format!("bounded engine {engine:?} K={k}"),
                &setting,
                &q,
                &db,
                &base,
                true,
                k,
            );
            assert!(ran >= 1, "bounded instance must meter enough to split");
        }
    }
}

/// RCQP: the coarse `Restart` frontier — a starved installment checkpoints,
/// and resuming returns the identical verdict the uninterrupted run gets.
#[test]
fn rcqp_restart_resume_matches_uninterrupted_runs() {
    let (setting, q) = rcqp_instance();
    let base = SearchBudget::default();
    let baseline = try_rcqp(&setting, &q, &base).expect("baseline must decide");

    let starved = SearchBudget {
        max_valuations: 1,
        max_candidates: 1,
        ..base
    };
    let (v1, cp) = try_rcqp_resumed(&setting, &q, &starved, None).expect("starved run");
    match cp {
        Some(cp) => {
            assert!(
                matches!(v1, QueryVerdict::Unknown { .. }),
                "a checkpointed installment must be inconclusive"
            );
            assert_eq!(cp.attempt, 1);
            let round_tripped = Checkpoint::from_json_str(&cp.to_json().to_string())
                .expect("rcqp checkpoint round-trip");
            assert_eq!(round_tripped, cp);
            let (v2, cp2) =
                try_rcqp_resumed(&setting, &q, &base, Some(&round_tripped)).expect("resumed run");
            assert_eq!(v2, baseline, "resumed RCQP verdict");
            assert_eq!(cp2.map(|c| c.attempt), None, "full budget must conclude");
        }
        None => panic!("the starved budget must checkpoint on this instance, got {v1:?}"),
    }
}

/// Feeding a checkpoint from one decision into another is a typed error at
/// the facade boundary, not a silent wrong answer.
#[test]
fn foreign_checkpoints_are_rejected_up_front() {
    let mut rng = SplitMix64::seed_from_u64(0xfeed);
    let pool = cq_pool();
    let q: Query = pool[0].clone().into();
    let other_q: Query = pool[1].clone().into();
    let base = SearchBudget::default();

    // Scan seeded instances for one that is partially closed and meters
    // enough to interrupt mid-decision.
    let mut found = None;
    for _ in 0..50 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 6, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        let t = total_ticks(&setting, &q, &db, &base);
        if t < 2 {
            continue;
        }
        let slice = sliced(&base, false, t / 2);
        let (_, cp) = try_rcdp_resumed(&setting, &q, &db, &slice, None).expect("starved run");
        if let Some(cp) = cp {
            found = Some((setting, db, cp));
            break;
        }
    }
    let (setting, db, cp) = found.expect("no interruptible instance in 50 seeded draws");
    match try_rcdp_resumed(&setting, &other_q, &db, &base, Some(&cp)) {
        Err(DecisionError::Checkpoint(CheckpointError::FingerprintMismatch { .. })) => {}
        other => panic!("expected a fingerprint rejection, got {other:?}"),
    }
    match try_rcqp_resumed(&setting, &q, &base, Some(&cp)) {
        Err(DecisionError::Checkpoint(CheckpointError::KindMismatch { .. })) => {}
        other => panic!("expected a kind rejection, got {other:?}"),
    }
}

/// Engines are a runtime choice, not part of a decision's identity: the
/// checkpoint fingerprint covers `(setting, query, db)` only, so a decision
/// checkpointed under `Engine::Planned` resumes legally under
/// `Engine::Indexed` and vice versa — and the cross-engine resume reaches
/// the same verdict as either engine's uninterrupted run.
#[test]
fn checkpoints_resume_across_planned_and_indexed_engines() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE);
    let pool = cq_pool();
    let q: Query = pool[1].clone().into();
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let planned = SearchBudget::default().with_engine(Engine::planned(1));

    let mut exercised = 0usize;
    for _ in 0..50 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 6, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        let t = total_ticks(&setting, &q, &db, &indexed);
        if t < 2 {
            continue;
        }
        let baseline = try_rcdp(&setting, &q, &db, &indexed).expect("baseline");

        for (first, second) in [(&planned, &indexed), (&indexed, &planned)] {
            let starved = sliced(first, false, t / 2);
            let (v1, cp) = try_rcdp_resumed(&setting, &q, &db, &starved, None).expect("starved");
            let Some(cp) = cp else {
                continue; // this instance decided before the meter tripped
            };
            assert!(matches!(v1, Verdict::Unknown { .. }));
            // The fingerprint binds the checkpoint to the decision inputs
            // only — recomputing it without any engine in hand must match.
            cp.validate(
                ric::DecisionKind::Rcdp,
                ric::rcdp_fingerprint(&setting, &q, &db),
            )
            .expect("fingerprint must not depend on the engine");
            // Resume on the *other* engine at full budget.
            let (v2, cp2) =
                try_rcdp_resumed(&setting, &q, &db, second, Some(&cp)).expect("cross resume");
            match (&baseline, &v2) {
                (Verdict::Complete, Verdict::Complete) => {}
                (Verdict::Incomplete(_), Verdict::Incomplete(b)) => {
                    assert!(
                        ric::complete::rcdp::certify_counterexample(&setting, &q, &db, b).unwrap(),
                        "cross-engine resume produced an uncertified counterexample"
                    );
                }
                other => panic!("cross-engine resume changed the verdict: {other:?}"),
            }
            assert!(cp2.is_none(), "full budget must conclude");
            exercised += 1;
        }
    }
    assert!(
        exercised >= 4,
        "too few interruptible instances for the cross-engine matrix ({exercised})"
    );
}

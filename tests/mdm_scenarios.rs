//! The Section 2.3 walkthrough, end to end on generated CRM scenarios.

use ric::mdm::{assess, guide_collection, needs_master_expansion, Assessment, Guidance};
use ric::mdm::{CrmScenario, ScenarioParams};
use ric::prelude::*;

fn small_scenario(at_most_k: Option<usize>) -> CrmScenario {
    let mut rng = ric::SplitMix64::seed_from_u64(77);
    CrmScenario::generate(
        ScenarioParams {
            n_domestic: 4,
            n_international: 2,
            n_employees: 3,
            n_support: 5,
            at_most_k,
            n_manage: 2,
        },
        &mut rng,
    )
}

/// Paradigm 1 on `Q1` (domestic customers of e0, joined through Cust):
/// the φ0-bounded join can be saturated, at which point the answer is
/// trustworthy.
#[test]
#[ignore = "heavy: ~10 s Σᵖ₂ enumeration; run by the ci.sh --ignored pass"]
fn paradigm_1_assessment_lifecycle() {
    let sc = small_scenario(None);
    let budget = SearchBudget::default();
    // Fresh scenario: almost certainly untrustworthy or trustworthy —
    // whichever it is, the assessment must be decisive (never inconclusive
    // on instances this small).
    match assess(&sc.setting, &sc.q1(), &sc.db, &budget).unwrap() {
        Assessment::Inconclusive { stats } => {
            panic!("assessment must be decisive on small instances: {stats}")
        }
        Assessment::Untrustworthy { example_gap } => {
            assert!(example_gap.delta.tuple_count() >= 1);
        }
        Assessment::Trustworthy => {}
    }
}

/// Paradigm 2 with the φ1 cardinality constraint: the completion distance
/// for "customers of e0" is k - k′.
#[test]
fn paradigm_2_completion_under_phi1() {
    let k = 2;
    let sc = small_scenario(Some(k));
    let supt = sc.setting.schema.rel_id("Supt").unwrap();
    let q = sc.q2();
    let budget = SearchBudget::default();
    // Current coverage of e0.
    let covered = sc
        .db
        .instance(supt)
        .iter()
        .filter(|t| t.get(0) == &Value::str("e0"))
        .count();
    match guide_collection(&sc.setting, &q, &sc.db, &budget).unwrap() {
        Guidance::Collect { missing } => {
            assert_eq!(
                missing.tuple_count(),
                k - covered,
                "φ1 bounds the completion distance by k - k′"
            );
        }
        Guidance::AlreadyComplete => assert_eq!(covered, k),
        other => panic!("unexpected guidance {other:?}"),
    }
}

/// Paradigm 3: `Q0′` (all customers, including international) can never be
/// answered completely under the current master data — and neither can the
/// bare `Q2` without φ1.
#[test]
fn paradigm_3_master_expansion_detection() {
    let sc = small_scenario(None);
    let budget = SearchBudget::default();
    assert_eq!(
        needs_master_expansion(&sc.setting, &sc.q0_prime(), &budget).unwrap(),
        Some(true),
        "international customers are open world"
    );
    assert_eq!(
        needs_master_expansion(&sc.setting, &sc.q2(), &budget).unwrap(),
        Some(true),
        "Supt alone is open world without φ1"
    );
}

/// The `Q3` language-relativity claim on a generated scenario.
#[test]
fn q3_cq_vs_datalog() {
    let sc = small_scenario(None);
    let budget = SearchBudget::default();
    // Both are incomplete in the open world, but both deciders must reach a
    // decision (FP through the bounded search).
    let fp_verdict = rcdp(&sc.setting, &sc.q3_datalog(), &sc.db, &budget).unwrap();
    assert!(
        fp_verdict.is_incomplete() || matches!(fp_verdict, Verdict::Unknown { .. }),
        "got {fp_verdict:?}"
    );
    let cq_verdict = rcdp(&sc.setting, &sc.q3_cq_two_hops(), &sc.db, &budget).unwrap();
    assert!(cq_verdict.is_incomplete());
}

/// Scenario generation respects its own constraints across seeds and
/// parameter combinations.
#[test]
fn scenario_generation_is_robust() {
    for seed in 0..5 {
        let mut rng = ric::SplitMix64::seed_from_u64(seed);
        for at_most_k in [None, Some(1), Some(3)] {
            let sc = CrmScenario::generate(
                ScenarioParams {
                    n_domestic: 3 + seed as usize,
                    n_international: seed as usize % 3,
                    n_employees: 2 + seed as usize % 3,
                    n_support: 8,
                    at_most_k,
                    n_manage: 2,
                },
                &mut rng,
            );
            assert!(
                sc.setting.partially_closed(&sc.db).unwrap(),
                "seed {seed}, k {at_most_k:?}"
            );
        }
    }
}

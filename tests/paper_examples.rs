//! End-to-end encodings of the paper's running examples (Examples 1.1, 2.1,
//! 2.2, 3.1, 4.1), checked against the claims made in the text.

use ric::prelude::*;
use ric_complete::rcdp::certify_counterexample;

/// Example 1.1 / 2.2, query `Q1`-style: with the master list `DCust` and an
/// IND bounding supported customers, a database whose answer covers the
/// master list is complete.
#[test]
fn example_2_2_q1_complete_when_master_covered() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let master = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = master.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&master);
    for c in ["c1", "c2", "c3"] {
        dm.insert(dcust, Tuple::new([Value::str(c)]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![2])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), master, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();

    let mut db = Database::empty(&schema);
    for c in ["c1", "c2", "c3"] {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str("d"), Value::str(c)]),
        );
    }
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete,
        "Q1 finds all master customers: the answer is complete"
    );
}

/// Example 2.1 / 2.2, constraint `φ1`: an employee supports at most `k`
/// customers, so a database holding `k` answers is complete, and the
/// completion distance is `k - k′` (the paper's final remark in Ex. 1.1).
#[test]
fn example_2_2_phi1_completion_distance() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let k = 3;
    let denial = ric::constraints::classical::at_most_k_per_key(supt, 0, 2, k, 3);
    let v = ConstraintSet::new(vec![ric::constraints::compile::denial_to_cc(&denial)]);
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();

    // k′ = 1 answers so far.
    let mut db = Database::empty(&schema);
    db.insert(
        supt,
        Tuple::new([Value::str("e0"), Value::str("d"), Value::str("c0")]),
    );
    match ric::complete::extend::complete_extension(&setting, &q, &db, &SearchBudget::default())
        .unwrap()
    {
        ric::complete::extend::CompletionOutcome::Completed { added, result } => {
            assert_eq!(
                added.tuple_count(),
                k - 1,
                "at most k - k′ additions needed"
            );
            assert_eq!(
                rcdp(&setting, &q, &result, &SearchBudget::default()).unwrap(),
                Verdict::Complete
            );
        }
        other => panic!("expected completion, got {other:?}"),
    }
}

/// Example 3.1, FD part: under `eid → dept, cid` an empty `Supt` is
/// incomplete for `Q2` but any nonempty answer makes it complete.
#[test]
fn example_3_1_fd_nonempty_answer_is_complete() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let fd = Fd::new(supt, vec![0], vec![1, 2]);
    let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();

    let empty = Database::empty(&schema);
    let verdict = rcdp(&setting, &q, &empty, &SearchBudget::default()).unwrap();
    match &verdict {
        Verdict::Incomplete(ce) => {
            assert!(certify_counterexample(&setting, &q, &empty, ce).unwrap());
        }
        other => panic!("expected incomplete, got {other:?}"),
    }

    let mut db = Database::empty(&schema);
    db.insert(
        supt,
        Tuple::new([Value::str("e0"), Value::str("d0"), Value::str("c0")]),
    );
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete,
        "the FD pins e0's single tuple, so the nonempty answer is complete"
    );
}

/// Example 1.1, query `Q3`: completeness is relative to the query language.
#[test]
fn example_1_1_q3_language_relativity() {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Manage", &["up", "down"])]).unwrap();
    let manage = schema.rel_id("Manage").unwrap();
    let setting = Setting::open_world(schema.clone());
    let mut db = Database::empty(&schema);
    for (a, b) in [("e2", "e1"), ("e1", "e0")] {
        db.insert(manage, Tuple::new([Value::str(a), Value::str(b)]));
    }

    // Datalog ancestors of e0: incomplete (new transitive edges can appear);
    // the undecidable cell answers through the bounded search.
    let fp: Query = parse_program(
        &schema,
        "Above(X, Y) :- Manage(X, Y). Above(X, Y) :- Manage(X, Z), Above(Z, Y). \
         Boss(X) :- Above(X, Y), Y = 'e0'.",
        "Boss",
    )
    .unwrap()
    .into();
    let verdict = rcdp(&setting, &fp, &db, &SearchBudget::default()).unwrap();
    assert!(verdict.is_incomplete(), "open-world hierarchy: {verdict:?}");

    // The two-hop CQ is likewise incomplete in the open world, decided by
    // the exact Σᵖ₂ procedure, and its counterexample certifies.
    let cq: Query = parse_cq(&schema, "Q(X) :- Manage(X, Z), Manage(Z, 'e0').")
        .unwrap()
        .into();
    match rcdp(&setting, &cq, &db, &SearchBudget::default()).unwrap() {
        Verdict::Incomplete(ce) => {
            assert!(certify_counterexample(&setting, &cq, &db, &ce).unwrap());
        }
        other => panic!("expected incomplete, got {other:?}"),
    }
}

/// Example 4.1: `Q4` (eid = e0 ∧ dept = d0 on a binary Supt) is relatively
/// complete under the FD eid → dept via a blocking database, while the
/// unconstrained-head variant is not.
#[test]
fn example_4_1_contrast() {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let fd = Fd::new(supt, vec![0], vec![1]);
    let v = ConstraintSet::new(ric::constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let budget = SearchBudget {
        fresh_values: 3,
        ..SearchBudget::default()
    };

    let q4: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.")
        .unwrap()
        .into();
    assert!(
        rcqp(&setting, &q4, &budget).unwrap().is_nonempty(),
        "a blocking tuple (e0, d′) makes a complete database"
    );

    let q2: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0').").unwrap().into();
    assert_eq!(
        rcqp(&setting, &q2, &budget).unwrap(),
        QueryVerdict::Empty,
        "fresh employees can always be injected"
    );

    // Verify the claimed D⁻ explicitly: a single (e0, d′) tuple blocks Q4.
    let mut d_minus = Database::empty(&schema);
    d_minus.insert(supt, Tuple::new([Value::str("e0"), Value::str("d-other")]));
    assert_eq!(
        rcdp(&setting, &q4, &d_minus, &budget).unwrap(),
        Verdict::Complete,
        "the paper's D⁻ is certified complete"
    );
}

/// Section 2.2: a CFD enforced as containment constraints rejects
/// inconsistent databases outright — consistency and completeness live in
/// one framework.
#[test]
fn consistency_and_completeness_in_one_framework() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let cfd = Cfd {
        rel: supt,
        lhs: vec![0],
        rhs: vec![2],
        lhs_pattern: vec![(1, Value::str("BU"))],
        rhs_pattern: vec![],
    };
    let v = ConstraintSet::new(ric::constraints::compile::cfd_to_ccs(&cfd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap()
        .into();

    let mut dirty = Database::empty(&schema);
    dirty.insert(
        supt,
        Tuple::new([Value::str("e1"), Value::str("BU"), Value::str("c1")]),
    );
    dirty.insert(
        supt,
        Tuple::new([Value::str("e1"), Value::str("BU"), Value::str("c2")]),
    );
    assert_eq!(
        rcdp(&setting, &q, &dirty, &SearchBudget::default()),
        Err(RcError::NotPartiallyClosed),
        "inconsistent databases are not even partially closed"
    );
}

//! Trace capture must be *verdict-neutral*, and every facade verdict must
//! carry a well-formed [`Explain`].
//!
//! Two contracts are pinned here:
//!
//! 1. **Neutrality** — attaching a [`TraceState`] to a probe changes what is
//!    *recorded* (span ids, open markers), never what is *decided*: verdicts,
//!    witnesses, counters, and gauges are bit-identical with tracing on and
//!    off, under the sequential and the parallel engine. The only sanctioned
//!    trace-gated emission is the `par.timeline` note family (wall-clock
//!    worker timelines, meaningless without a trace to hang them on).
//! 2. **Explain well-formedness** — every `try_rcdp_probed` /
//!    `try_rcqp_probed` verdict carries a span tree with exactly one root
//!    named `decision`, every span closed, an `outcome` matching the verdict,
//!    and — when the verdict is `Unknown` — the dead budget in `limit` plus
//!    an `explain.frontier` note describing what was left unexplored.

use ric::prelude::*;
use ric::{Event, SplitMix64};

/// `R(a, b)` / `S(a)` schema shared by the random instances.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

/// The one sanctioned trace-gated emission: wall-clock worker timelines.
fn drop_timeline(report: &mut Report) {
    report.notes.retain(|name, _| *name != "par.timeline");
}

/// `par.steal` and `par.chunk` count scheduler events — steals and chunk
/// claims depend on thread timing (workers race past the deciding chunk
/// before the stop broadcast lands), so they differ between *any* two
/// parallel runs, traced or not. They are outside the neutrality criterion;
/// the decision counters, which the merge sums deterministically up to the
/// deciding chunk, stay in.
fn drop_scheduler_counters(report: &mut Report) {
    report
        .counters
        .retain(|name, _| !matches!(*name, "par.steal" | "par.chunk"));
}

/// Run one decision with and without a [`TraceState`] attached and require
/// bit-identical verdicts, counters, gauges, notes (minus `par.timeline`),
/// and span families.
fn assert_trace_neutral(setting: &Setting, q: &Query, db: &Database, budget: &SearchBudget) {
    let plain_collector = Collector::new();
    let plain_verdict =
        rcdp_probed(setting, q, db, budget, Probe::attached(&plain_collector)).unwrap();
    let mut plain = plain_collector.report();
    drop_scheduler_counters(&mut plain);

    let trace = TraceState::new();
    let traced_collector = Collector::new();
    let traced_verdict = rcdp_probed(
        setting,
        q,
        db,
        budget,
        Probe::attached(&traced_collector).with_trace(&trace),
    )
    .unwrap();
    let mut traced = traced_collector.report();
    drop_scheduler_counters(&mut traced);

    assert_eq!(
        plain_verdict, traced_verdict,
        "tracing changed the verdict (engine {})",
        budget.engine
    );
    assert_eq!(
        plain.counters, traced.counters,
        "tracing changed a counter (engine {})",
        budget.engine
    );
    assert_eq!(
        plain.gauges, traced.gauges,
        "tracing changed a gauge (engine {})",
        budget.engine
    );
    drop_timeline(&mut traced);
    assert_eq!(
        plain.notes, traced.notes,
        "tracing changed a note other than par.timeline (engine {})",
        budget.engine
    );
    // Span durations are wall-clock; only the *family* of span names must
    // agree (ids and open markers are the trace's whole point).
    let names = |r: &Report| r.spans.keys().copied().collect::<Vec<_>>();
    assert_eq!(
        names(&plain),
        names(&traced),
        "tracing changed the span family (engine {})",
        budget.engine
    );
}

#[test]
fn tracing_is_verdict_neutral_sequential() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    let budget = SearchBudget::default().with_engine(Engine::Indexed);
    let mut compared = 0usize;
    for _ in 0..25 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for cq in cq_pool() {
            assert_trace_neutral(&setting, &cq.into(), &db, &budget);
            compared += 1;
        }
    }
    assert!(compared >= 20, "too few instances compared ({compared})");
}

#[test]
fn tracing_is_verdict_neutral_parallel() {
    let mut rng = SplitMix64::seed_from_u64(0xFACE);
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let mut compared = 0usize;
    for _ in 0..16 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for cq in cq_pool() {
            assert_trace_neutral(&setting, &cq.into(), &db, &budget);
            compared += 1;
        }
    }
    assert!(compared >= 12, "too few instances compared ({compared})");
}

// ── Explain well-formedness across the verdict variants ─────────────────

/// `Supt(eid, cid)` bounded by a `DCust` master of `master` customers, with
/// the database supporting the first `supported` of them.
fn supt_instance(master: usize, supported: usize) -> (Setting, Query, Database) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    for c in 0..master {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    for c in 0..supported {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str(format!("c{c}"))]),
        );
    }
    (setting, q, db)
}

/// The structural contract every facade Explain satisfies.
fn assert_well_formed(explain: &ric::Explain, expected_outcome: &str) {
    explain
        .tree
        .require_decision()
        .expect("facade explain must satisfy the decision-trace contract");
    let root = explain.tree.roots()[0];
    assert_eq!(explain.tree.records()[root].name, "decision");
    assert_eq!(explain.outcome.as_deref(), Some(expected_outcome));
    // The JSON rendering must be machine-consumable with the same parser
    // the CLI uses.
    let text = explain.to_json().to_string();
    ric::telemetry::json::parse(&text).expect("explain.to_json must parse back");
}

#[test]
fn rcdp_explain_is_well_formed_for_every_verdict_variant() {
    // Complete: every master customer is already supported.
    let (setting, q, db) = supt_instance(6, 6);
    let d = try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::disabled(),
    )
    .unwrap();
    assert!(d.verdict.is_complete(), "planted complete: {}", d.verdict);
    assert_well_formed(&d.explain, "complete");

    // Incomplete: two master customers remain unsupported.
    let (setting, q, db) = supt_instance(6, 4);
    let d = try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::disabled(),
    )
    .unwrap();
    assert!(
        d.verdict.is_incomplete(),
        "planted incomplete: {}",
        d.verdict
    );
    assert_well_formed(&d.explain, "incomplete");
    assert!(
        d.explain.counters.contains_key("rcdp.valuations"),
        "the enumeration counters must ride the explain: {:?}",
        d.explain.counters
    );

    // Unknown: a one-valuation meter dies mid-search. The explain must name
    // the dead budget and narrate the remaining frontier.
    let (setting, q, db) = supt_instance(6, 4);
    let tight = SearchBudget {
        max_valuations: 1,
        ..SearchBudget::default()
    };
    let d = try_rcdp_probed(&setting, &q, &db, &tight, Probe::disabled()).unwrap();
    let Verdict::Unknown { stats } = &d.verdict else {
        panic!(
            "expected Unknown under a one-valuation meter, got {}",
            d.verdict
        );
    };
    assert_eq!(stats.limit, BudgetLimit::MaxValuations);
    assert_well_formed(&d.explain, "unknown");
    assert!(
        d.explain.limit.is_some(),
        "unknown verdicts must name the dead budget"
    );
    assert!(
        d.explain
            .notes
            .iter()
            .any(|(name, _)| name == "explain.frontier"),
        "unknown verdicts must narrate the unexplored frontier: {:?}",
        d.explain.notes
    );
}

#[test]
fn rcqp_explain_is_well_formed() {
    let (setting, q, _) = supt_instance(6, 4);
    let d = try_rcqp_probed(&setting, &q, &SearchBudget::default(), Probe::disabled()).unwrap();
    assert!(
        matches!(d.verdict, QueryVerdict::Nonempty { .. }),
        "a satisfiable setting must have a witness: {:?}",
        d.verdict
    );
    assert_well_formed(&d.explain, "nonempty");
}

#[test]
fn parallel_explain_carries_merged_profile_and_frontier() {
    let (setting, q, db) = supt_instance(8, 6);
    let budget = SearchBudget::default().with_engine(Engine::parallel(4));
    let d = try_rcdp_probed(&setting, &q, &db, &budget, Probe::disabled()).unwrap();
    assert_well_formed(
        &d.explain,
        if d.verdict.is_complete() {
            "complete"
        } else {
            "incomplete"
        },
    );
    // The merged per-depth profile from the workers' chunk stats must be
    // visible in the explain's counters.
    assert!(
        d.explain
            .counters
            .keys()
            .any(|name| name.starts_with("depth.candidates.")),
        "parallel explains must carry the merged depth profile: {:?}",
        d.explain.counters
    );
}

/// When the caller attaches their own `TraceState` and sink, the same span
/// stream that builds the in-process `Explain` is teed out — and the caller
/// can rebuild the identical tree from it, which is exactly what the
/// `ric-trace` CLI does with a JSONL file.
#[test]
fn caller_sink_stream_rebuilds_the_explain_tree() {
    let (setting, q, db) = supt_instance(6, 4);
    let collector = Collector::new();
    let trace = TraceState::new();
    let d = try_rcdp_probed(
        &setting,
        &q,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector).with_trace(&trace),
    )
    .unwrap();
    let mut builder = ric::telemetry::TreeBuilder::new();
    for event in collector.events() {
        match event {
            Event::SpanOpen {
                name,
                id,
                parent,
                at_tick,
            } => builder.open(name, id, parent, at_tick).unwrap(),
            Event::Span {
                name,
                micros,
                id,
                ticks,
                ..
            } if id != 0 => builder.close(name, id, micros, ticks).unwrap(),
            _ => {}
        }
    }
    let rebuilt = builder.finish();
    rebuilt.require_decision().unwrap();
    assert_eq!(
        rebuilt.records(),
        d.explain.tree.records(),
        "the teed stream must rebuild the exact explain tree"
    );
}

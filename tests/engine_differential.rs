//! Differential testing of the evaluation engine: the indexed/overlay paths
//! must agree, bit for bit, with the naive reference paths on randomized
//! instances.
//!
//! Unlike `cross_crate_properties.rs` this suite needs no external crate —
//! instances are generated with the in-tree [`SplitMix64`] — so it runs in
//! the default offline `cargo test` pass. Each case fixes its seed, so a
//! failure reproduces exactly.
//!
//! Covered equivalences:
//!
//! * CQ / UCQ / ∃FO⁺ / FO evaluation over an [`Overlay`] `D ∪ Δ` versus the
//!   materialized union (the overlay's index-probe path versus plain scans);
//! * [`eval_tableau_delta`] + `q(D)` versus `q(D ∪ Δ)` (the incremental
//!   identity the delta-aware CC checker relies on);
//! * incremental upper-bound satisfaction versus the full re-check;
//! * RCDP and RCQP verdicts under `Engine::Indexed` versus `Engine::Naive`.

use ric::data::{Overlay, TupleStore};
use ric::prelude::*;
use ric::query::eval::{eval_tableau_delta, eval_tableau_naive, eval_ucq};
use ric::query::{EfoExpr, EfoQuery, FoExpr, FoQuery, Tableau};
use ric::SplitMix64;
use std::collections::BTreeSet;

/// Fixed two-relation schema for the generators: `R(a, b)`, `S(a)`.
fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

/// A random database over `schema()` with values drawn from `0..vals`.
fn random_db(rng: &mut SplitMix64, vals: i64, r_max: usize, s_max: usize) -> Database {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let mut db = Database::empty(&s);
    for _ in 0..rng.random_range(0..r_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        let b = rng.random_range(0..vals as usize) as i64;
        db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
    }
    for _ in 0..rng.random_range(0..s_max + 1) {
        let a = rng.random_range(0..vals as usize) as i64;
        db.insert(srel, Tuple::new([Value::int(a)]));
    }
    db
}

/// A pool of CQs exercising joins, constants, self-joins, and inequalities.
fn cq_pool() -> Vec<Cq> {
    let s = schema();
    [
        "Q(X) :- R(X, Y).",
        "Q(X, Z) :- R(X, Y), R(Y, Z).",
        "Q(X) :- R(X, Y), S(Y).",
        "Q(X, Y) :- R(X, Y), X != Y.",
        "Q(X) :- R(X, 3).",
        "Q() :- R(1, X), S(X).",
        "Q(Y) :- R(X, Y), R(Y, X), S(X).",
    ]
    .iter()
    .map(|src| parse_cq(&s, src).unwrap())
    .collect()
}

fn ucq_pool() -> Vec<Ucq> {
    let s = schema();
    vec![
        parse_ucq(&s, "Q(X) :- R(X, Y). Q(X) :- S(X).").unwrap(),
        parse_ucq(&s, "Q(X, Y) :- R(X, Y), X != Y. Q(X, X) :- S(X).").unwrap(),
    ]
}

/// Overlay evaluation must equal evaluation on the materialized union.
#[test]
fn overlay_eval_matches_materialized_union() {
    let mut rng = SplitMix64::seed_from_u64(0xD1FF);
    for round in 0..60 {
        let base = random_db(&mut rng, 5, 10, 6);
        let delta = random_db(&mut rng, 5, 4, 3);
        let ov = Overlay::new(&base, &delta).unwrap();
        let union = ov.materialize();
        assert_eq!(
            union,
            base.union(&delta).unwrap(),
            "materialize must equal union (round {round})"
        );
        for cq in &cq_pool() {
            let via_overlay = ric::query::eval::eval_cq(cq, &ov).unwrap();
            let via_union = ric::query::eval::eval_cq(cq, &union).unwrap();
            assert_eq!(via_overlay, via_union, "CQ {cq:?} differs (round {round})");
        }
        for ucq in &ucq_pool() {
            assert_eq!(
                eval_ucq(ucq, &ov).unwrap(),
                eval_ucq(ucq, &union).unwrap(),
                "UCQ differs (round {round})"
            );
        }
    }
}

/// The index-join tableau evaluator must agree with the naive backtracking
/// reference on plain databases.
#[test]
fn indexed_tableau_eval_matches_naive() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    for round in 0..60 {
        let db = random_db(&mut rng, 5, 12, 6);
        for cq in &cq_pool() {
            let t = Tableau::of(cq).unwrap();
            assert_eq!(
                ric::query::eval::eval_tableau(&t, &db),
                eval_tableau_naive(&t, &db),
                "tableau eval differs (round {round}, {cq:?})"
            );
        }
    }
}

/// The incremental identity: `q(D ∪ Δ) = q(D) ∪ delta_answers` for monotone
/// tableau bodies.
#[test]
fn tableau_delta_answers_complete_the_union() {
    let mut rng = SplitMix64::seed_from_u64(0xCAFE);
    for round in 0..60 {
        let base = random_db(&mut rng, 5, 10, 6);
        let delta = random_db(&mut rng, 5, 4, 3);
        let ov = Overlay::new(&base, &delta).unwrap();
        let union = ov.materialize();
        for cq in &cq_pool() {
            let t = Tableau::of(cq).unwrap();
            let mut incremental = eval_tableau_naive(&t, &base);
            incremental.extend(eval_tableau_delta(&t, &ov));
            assert_eq!(
                incremental,
                eval_tableau_naive(&t, &union),
                "incremental identity broken (round {round}, {cq:?})"
            );
        }
    }
}

/// ∃FO⁺ and FO evaluation are generic over the store; overlay and union must
/// agree (FO exercises `active_domain_into` and the negation paths).
#[test]
fn efo_and_fo_eval_agree_on_overlay_and_union() {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let (x, y) = (Var(0), Var(1));
    // ∃FO⁺: R(x,y) ∧ (S(x) ∨ S(y))
    let efo = EfoQuery::new(
        vec![Term::Var(x), Term::Var(y)],
        EfoExpr::And(vec![
            EfoExpr::Atom(ric::query::Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
            EfoExpr::Or(vec![
                EfoExpr::Atom(ric::query::Atom::new(srel, vec![Term::Var(x)])),
                EfoExpr::Atom(ric::query::Atom::new(srel, vec![Term::Var(y)])),
            ]),
        ]),
        vec!["x".into(), "y".into()],
    );
    // FO with negation: R(x,y) ∧ ¬S(y)
    let fo = FoQuery::new(
        vec![x],
        FoExpr::Exists(
            vec![y],
            Box::new(FoExpr::And(vec![
                FoExpr::Atom(ric::query::Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
                FoExpr::not(FoExpr::Atom(ric::query::Atom::new(
                    srel,
                    vec![Term::Var(y)],
                ))),
            ])),
        ),
        vec!["x".into(), "y".into()],
    );
    let mut rng = SplitMix64::seed_from_u64(0xF0F0);
    for round in 0..40 {
        let base = random_db(&mut rng, 4, 8, 5);
        let delta = random_db(&mut rng, 4, 3, 2);
        let ov = Overlay::new(&base, &delta).unwrap();
        let union = ov.materialize();
        assert_eq!(
            efo.eval(&ov).unwrap(),
            efo.eval(&union).unwrap(),
            "∃FO⁺ differs (round {round})"
        );
        assert_eq!(
            fo.try_eval(&ov).unwrap(),
            fo.try_eval(&union).unwrap(),
            "FO differs (round {round})"
        );
    }
}

/// The scan/probe contract of `TupleStore`: an overlay must visit each union
/// tuple exactly once, and probes must return exactly the matching tuples.
#[test]
fn overlay_store_contract() {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let mut rng = SplitMix64::seed_from_u64(0xA11CE);
    for _ in 0..40 {
        let base = random_db(&mut rng, 4, 8, 5);
        let delta = random_db(&mut rng, 4, 4, 3);
        let ov = Overlay::new(&base, &delta).unwrap();
        let union = ov.materialize();
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        let mut dupes = 0usize;
        ov.scan(r, &mut |t| {
            if !seen.insert(t.clone()) {
                dupes += 1;
            }
            true
        });
        assert_eq!(dupes, 0, "overlay scan visited a tuple twice");
        let expected: BTreeSet<Tuple> = union.instance(r).iter().cloned().collect();
        assert_eq!(seen, expected, "overlay scan missed or invented tuples");
        for v in (0..4).map(Value::int) {
            let mut probed: BTreeSet<Tuple> = BTreeSet::new();
            ov.probe(r, 0, &v, &mut |t| {
                probed.insert(t.clone());
                true
            });
            let filtered: BTreeSet<Tuple> = expected
                .iter()
                .filter(|t| t.get(0) == &v)
                .cloned()
                .collect();
            assert_eq!(probed, filtered, "probe(col 0, {v}) disagrees with scan");
        }
    }
}

/// A random constraint setting: `R`'s first column bounded by master `M`,
/// `S` bounded by master `N`.
fn random_setting(rng: &mut SplitMix64) -> Setting {
    let s = schema();
    let r = s.rel_id("R").unwrap();
    let srel = s.rel_id("S").unwrap();
    let m = Schema::from_relations(vec![
        RelationSchema::infinite("M", &["a"]),
        RelationSchema::infinite("N", &["a"]),
    ])
    .unwrap();
    let mrel = m.rel_id("M").unwrap();
    let nrel = m.rel_id("N").unwrap();
    let mut dm = Database::empty(&m);
    for v in 0..5 {
        if rng.random_bool(0.7) {
            dm.insert(mrel, Tuple::new([Value::int(v)]));
        }
        if rng.random_bool(0.7) {
            dm.insert(nrel, Tuple::new([Value::int(v)]));
        }
    }
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            mrel,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(srel, vec![0])),
            nrel,
            vec![0],
        ),
    ]);
    Setting::new(s, m, dm, v)
}

/// Incremental upper-bound checking must agree with the full re-check
/// whenever its precondition (base satisfies the bounds) holds.
#[test]
fn delta_cc_check_matches_full_check() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    let mut exercised = 0usize;
    for _ in 0..200 {
        let setting = random_setting(&mut rng);
        let base = random_db(&mut rng, 5, 6, 4);
        if !setting.v.upper_satisfied(&base, &setting.dm).unwrap() {
            continue; // precondition of the incremental check
        }
        let delta = random_db(&mut rng, 5, 3, 2);
        let ov = Overlay::new(&base, &delta).unwrap();
        let incremental = setting
            .v
            .upper_satisfied_delta(&setting.schema, &setting.dm, &ov)
            .unwrap();
        let full = setting
            .v
            .upper_satisfied(&ov.materialize(), &setting.dm)
            .unwrap();
        assert_eq!(incremental.satisfied, full, "delta CC check diverges");
        exercised += 1;
    }
    assert!(exercised >= 20, "too few bases satisfied the constraints");
}

/// RCDP must return the same verdict kind (and equally certified
/// counterexamples) under both engines.
#[test]
fn rcdp_verdicts_agree_across_engines() {
    let mut rng = SplitMix64::seed_from_u64(0x7777);
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    let mut decided = 0usize;
    for round in 0..40 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 5, 3);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vn = rcdp(&setting, &q, &db, &naive).unwrap();
            let vi = rcdp(&setting, &q, &db, &indexed).unwrap();
            match (&vn, &vi) {
                (Verdict::Complete, Verdict::Complete) => {}
                (Verdict::Incomplete(a), Verdict::Incomplete(b)) => {
                    // Both counterexamples must certify; the exact witness may
                    // legitimately differ with enumeration order.
                    for ce in [a, b] {
                        assert!(
                            ric::complete::rcdp::certify_counterexample(&setting, &q, &db, ce)
                                .unwrap(),
                            "uncertified counterexample (round {round}, query {qi})"
                        );
                    }
                }
                other => panic!("engines disagree (round {round}, query {qi}): {other:?}"),
            }
            decided += 1;
        }
    }
    assert!(
        decided >= 40,
        "too few partially closed instances generated"
    );
}

/// RCQP must return the same verdict kind under both engines.
#[test]
fn rcqp_verdicts_agree_across_engines() {
    let mut rng = SplitMix64::seed_from_u64(0x9999);
    let naive = SearchBudget::default().with_engine(Engine::Naive);
    let indexed = SearchBudget::default().with_engine(Engine::Indexed);
    for round in 0..10 {
        let setting = random_setting(&mut rng);
        for (qi, cq) in cq_pool().into_iter().enumerate() {
            let q: Query = cq.into();
            let vn = rcqp(&setting, &q, &naive).unwrap();
            let vi = rcqp(&setting, &q, &indexed).unwrap();
            assert_eq!(
                std::mem::discriminant(&vn),
                std::mem::discriminant(&vi),
                "RCQP verdicts diverge (round {round}, query {qi}): {vn:?} vs {vi:?}"
            );
        }
    }
}

/// Two schemas using the *same relation names* must stay fully independent
/// inside one process. The string interner is process-global (equal names
/// share one allocation) and `Database::active_domain()` is cached — this
/// pins down that neither mechanism leaks state across schemas: `RelId`s are
/// per-schema, active domains are per-database, and the `index.probe`
/// telemetry counter of a decision is unchanged by interleaved decisions
/// over the colliding schema (the counter is a per-thread snapshot delta,
/// not a shared total).
#[test]
fn colliding_relation_names_do_not_cross_contaminate() {
    // Schema 1: the suite's R(a,b), S(a). Schema 2 reuses both names with
    // different arities and positions.
    let s1 = schema();
    let s2 = Schema::from_relations(vec![
        RelationSchema::infinite("S", &["x", "y", "z"]),
        RelationSchema::infinite("R", &["x"]),
    ])
    .unwrap();
    assert_ne!(s1.rel_id("R"), s2.rel_id("R"), "RelIds must be per-schema");

    let mut db1 = Database::empty(&s1);
    db1.insert(
        s1.rel_id("R").unwrap(),
        Tuple::new([Value::str("shared"), Value::str("only-one")]),
    );
    let mut db2 = Database::empty(&s2);
    db2.insert(
        s2.rel_id("R").unwrap(),
        Tuple::new([Value::str("only-two")]),
    );
    db2.insert(
        s2.rel_id("S").unwrap(),
        Tuple::new([
            Value::str("shared"),
            Value::str("only-two"),
            Value::str("only-two"),
        ]),
    );

    // Interleave cache fills: each database sees exactly its own constants,
    // even though "shared" is one process-global interned allocation.
    assert!(db1.active_domain().contains(&Value::str("shared")));
    assert!(db2.active_domain().contains(&Value::str("shared")));
    assert!(db1.active_domain().contains(&Value::str("only-one")));
    assert!(!db1.active_domain().contains(&Value::str("only-two")));
    assert!(db2.active_domain().contains(&Value::str("only-two")));
    assert!(!db2.active_domain().contains(&Value::str("only-one")));
    // Mutation drops the cache instead of serving stale contents.
    db1.insert(s1.rel_id("S").unwrap(), Tuple::new([Value::str("late")]));
    assert!(db1.active_domain().contains(&Value::str("late")));
    assert!(!db2.active_domain().contains(&Value::str("late")));

    // Index/probe telemetry isolation: measure a decision on setting 1,
    // then run a decision over the colliding schema, then re-measure. The
    // per-decision `index.probe` figure must be identical.
    let mut rng = SplitMix64::seed_from_u64(0xC011);
    let setting1 = random_setting(&mut rng);
    let db = random_db(&mut rng, 4, 6, 4);
    let q: Query = parse_cq(&schema(), "Q(X) :- R(X, Y), S(Y).")
        .unwrap()
        .into();
    let budget = SearchBudget::default().with_engine(Engine::Indexed);
    let measure = || {
        let collector = Collector::new();
        rcdp_probed(&setting1, &q, &db, &budget, Probe::attached(&collector)).unwrap();
        collector.report().counter("index.probe")
    };
    let before = measure();

    // Noise: a full decision over the colliding schema, probing db2 indexes.
    let m2 = Schema::from_relations(vec![RelationSchema::infinite("M", &["x"])]).unwrap();
    let mut dm2 = Database::empty(&m2);
    dm2.insert(
        m2.rel_id("M").unwrap(),
        Tuple::new([Value::str("only-two")]),
    );
    let setting2 = Setting::new(
        s2.clone(),
        m2.clone(),
        dm2,
        ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(s2.rel_id("R").unwrap(), vec![0])),
            m2.rel_id("M").unwrap(),
            vec![0],
        )]),
    );
    let q2: Query = parse_cq(&s2, "Q(A) :- S(A, B, C), R(A).").unwrap().into();
    let collector = Collector::new();
    rcdp_probed(&setting2, &q2, &db2, &budget, Probe::attached(&collector)).unwrap();

    let after = measure();
    assert_eq!(
        before, after,
        "index.probe telemetry leaked across colliding schemas"
    );
}

/// FO/FP settings route through the bounded semi-decision; its verdicts must
/// also be engine-independent.
#[test]
fn bounded_search_verdicts_agree_across_engines() {
    let s = schema();
    let srel = s.rel_id("S").unwrap();
    let x = Var(0);
    // Non-monotone query: values of S with no R successor... keep it simple:
    // Q() := ¬∃x S(x).
    let fo = FoQuery::new(
        vec![],
        FoExpr::not(FoExpr::Exists(
            vec![x],
            Box::new(FoExpr::Atom(ric::query::Atom::new(
                srel,
                vec![Term::Var(x)],
            ))),
        )),
        vec!["x".into()],
    );
    let naive = SearchBudget::small().with_engine(Engine::Naive);
    let indexed = SearchBudget::small().with_engine(Engine::Indexed);
    let mut rng = SplitMix64::seed_from_u64(0x1234);
    for round in 0..10 {
        let setting = random_setting(&mut rng);
        let db = random_db(&mut rng, 5, 4, 2);
        if !setting.partially_closed(&db).unwrap() {
            continue;
        }
        let q = Query::Fo(fo.clone());
        let vn = rcdp(&setting, &q, &db, &naive).unwrap();
        let vi = rcdp(&setting, &q, &db, &indexed).unwrap();
        assert_eq!(
            std::mem::discriminant(&vn),
            std::mem::discriminant(&vi),
            "bounded verdicts diverge (round {round}): {vn:?} vs {vi:?}"
        );
    }
}

//! Delete/tombstone edge cases of the monitor's transactional overlay.
//!
//! A transaction's ops are coalesced last-op-wins before any mutation, so
//! the overlay's tombstone layer has three classic edges worth pinning at
//! the monitor level:
//!
//! * deleting a tuple that exists only *inside the same transaction's delta*
//!   (insert → delete) must be a net no-op;
//! * re-inserting a tuple after deleting it in the same transaction
//!   (delete → insert of a present tuple) must be a net no-op;
//! * the semantic state digest must be a pure function of the net effect —
//!   two op orderings with the same net effect converge to the same digest,
//!   fingerprints, and verdicts.
//!
//! Also pins the [`Monitor::with_memo_cap`] satellite: a capacity-1 memo
//! evicts (counted in `memo_evict`) yet never changes verdicts — the memo
//! is a replay cache, not a soundness device.

use ric::prelude::*;
use ric::Engine;

/// One support table IND-bounded by a master list, plus the matching
/// completeness question (the Example 1.1 shape).
fn fixture() -> (Schema, Schema, Database, ConstraintSet, Query, RelId) {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let master = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = master.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&master);
    for c in ["c1", "c2"] {
        dm.insert(dcust, Tuple::new([Value::str(c)]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt(E, C).").unwrap().into();
    (schema, master, dm, v, q, supt)
}

fn monitor() -> (Monitor, SettingId, RelId) {
    let (schema, master, dm, v, q, supt) = fixture();
    let mut mon = Monitor::new(schema, master, dm, SearchBudget::default()).unwrap();
    let id = mon.register("supt", v, q).unwrap();
    (mon, id, supt)
}

fn tup(e: &str, c: &str) -> Tuple {
    Tuple::new([Value::str(e), Value::str(c)])
}

/// insert → delete of the same tuple within one txn: the tuple only ever
/// existed in the delta layer, and the transaction must be a net no-op.
#[test]
fn delete_of_a_tuple_only_in_the_delta_layer_is_a_net_noop() {
    let (mut mon, id, supt) = monitor();
    let before_digest = mon.state_digest();
    let before_verdict = mon.verdict(id).unwrap().clone();
    let changes = mon
        .apply(&Txn::new([
            Op::insert(supt, tup("e9", "c2")),
            Op::delete(supt, tup("e9", "c2")),
        ]))
        .unwrap();
    assert!(
        changes.is_empty(),
        "net no-op caused transitions: {changes:?}"
    );
    assert_eq!(mon.state_digest(), before_digest);
    assert_eq!(mon.verdict(id).unwrap(), &before_verdict);
    assert!(mon.db().instance(supt).is_empty());
}

/// delete → re-insert of a present tuple within one txn: last-op-wins keeps
/// the tuple, so state, digest, and verdict are untouched.
#[test]
fn reinsert_after_delete_within_one_txn_is_a_net_noop() {
    let (mut mon, id, supt) = monitor();
    mon.apply(&Txn::new([Op::insert(supt, tup("e1", "c1"))]))
        .unwrap();
    let before_digest = mon.state_digest();
    let before_verdict = mon.verdict(id).unwrap().clone();
    let changes = mon
        .apply(&Txn::new([
            Op::delete(supt, tup("e1", "c1")),
            Op::insert(supt, tup("e1", "c1")),
        ]))
        .unwrap();
    assert!(
        changes.is_empty(),
        "net no-op caused transitions: {changes:?}"
    );
    assert_eq!(mon.state_digest(), before_digest);
    assert_eq!(mon.verdict(id).unwrap(), &before_verdict);
    assert!(mon.db().instance(supt).contains(&tup("e1", "c1")));
}

/// Two op orderings with the same net effect — tombstone-then-insert mixed
/// across distinct tuples, in shuffled orders — converge to identical
/// digests and verdicts (the digest is content-addressed, not
/// history-addressed).
#[test]
fn digest_is_stable_across_commuting_op_orderings() {
    let ops = |order: &[usize]| {
        let pool = [
            Op::insert(RelId(0), tup("e1", "c1")),
            Op::insert(RelId(0), tup("e2", "c2")),
            Op::delete(RelId(0), tup("e3", "c1")),
        ];
        Txn::new(order.iter().map(|&i| pool[i].clone()))
    };
    let run = |order: &[usize]| {
        let (mut mon, id, supt) = monitor();
        // Seed e3 so the delete is real in one ordering class.
        mon.apply(&Txn::new([Op::insert(supt, tup("e3", "c1"))]))
            .unwrap();
        mon.apply(&ops(order)).unwrap();
        (mon.state_digest(), mon.verdict(id).unwrap().clone())
    };
    let (d0, v0) = run(&[0, 1, 2]);
    for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        let (d, v) = run(&order);
        assert_eq!(d, d0, "digest diverges for ordering {order:?}");
        assert_eq!(v, v0, "verdict diverges for ordering {order:?}");
    }
}

/// A transaction followed by its inverse restores the digest bitwise even
/// when the forward txn mixes inserts and tombstones.
#[test]
fn inverse_restores_digest_across_mixed_tombstones() {
    let (mut mon, _id, supt) = monitor();
    mon.apply(&Txn::new([Op::insert(supt, tup("e1", "c1"))]))
        .unwrap();
    let before = mon.state_digest();
    let fwd = Txn::new([
        Op::delete(supt, tup("e1", "c1")),
        Op::insert(supt, tup("e2", "c2")),
    ]);
    let inv = fwd.inverse();
    mon.apply(&fwd).unwrap();
    assert_ne!(mon.state_digest(), before);
    mon.apply(&inv).unwrap();
    assert_eq!(mon.state_digest(), before);
}

/// `with_memo_cap(1)`: ping-ponging between two states forces evictions
/// (visible in `memo_evict`) while verdicts stay exactly what a capacious
/// memo produces.
#[test]
fn memo_cap_one_evicts_but_never_changes_verdicts() {
    let (schema, master, dm, v, q, supt) = fixture();
    let mut small = Monitor::new(
        schema.clone(),
        master.clone(),
        dm.clone(),
        SearchBudget::default().with_engine(Engine::Indexed),
    )
    .unwrap()
    .with_memo_cap(1);
    assert_eq!(small.memo_cap(), 1);
    let mut big = Monitor::new(
        schema,
        master,
        dm,
        SearchBudget::default().with_engine(Engine::Indexed),
    )
    .unwrap();
    let sid = small.register("supt", v.clone(), q.clone()).unwrap();
    let bid = big.register("supt", v, q).unwrap();
    let fwd = Txn::new([Op::insert(supt, tup("e1", "c1"))]);
    let bwd = Txn::new([Op::delete(supt, tup("e1", "c1"))]);
    for _ in 0..4 {
        for txn in [&fwd, &bwd] {
            small.apply(txn).unwrap();
            big.apply(txn).unwrap();
            // Status must agree; the exact witness may differ (an evicted
            // memo re-derives it via the recertification fast path, which
            // reproduces verdicts only up to witness choice).
            assert_eq!(
                small.verdict(sid).unwrap().status(),
                big.verdict(bid).unwrap().status()
            );
            assert_eq!(small.db(), big.db());
        }
    }
    assert!(
        small.counters().memo_evict > 0,
        "a capacity-1 memo must evict on this ping-pong stream"
    );
    assert_eq!(
        big.counters().memo_evict,
        0,
        "the default capacity must not evict on a 2-state stream"
    );
}

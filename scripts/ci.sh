#!/usr/bin/env bash
# Full offline CI gate for the ric workspace.
#
# Runs the same checks the repository expects before every merge:
#   1. release build          (cargo build --release)
#   2. test suite             (cargo test -q)
#   3. fault injection        (cargo test --test guard_robustness)
#   4. formatting             (cargo fmt --check)
#   5. lints                  (cargo clippy --all-targets -D warnings)
#   6. panic-surface audit    (clippy unwrap_used/expect_used, advisory)
#
# Everything runs with --offline: the default build has zero third-party
# dependencies, so no network access is ever required. The proptest suites
# are feature-gated (`cargo test --features proptest`) and are NOT part of
# this gate — they need an environment that can fetch crates.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "build (release, offline)"
cargo build --release --offline

step "tests"
cargo test -q --offline

step "fault injection (deadline / cancel / panic degradation paths)"
cargo test -q --offline --test guard_robustness

step "formatting"
cargo fmt --all -- --check

step "clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

# Advisory only: the decision stack (ric-complete, ric) is panic-isolated at
# the facade, but new unwrap()/expect() sites in library code there should be
# deliberate. Warnings are reported, not fatal — tests and examples are
# expected to use them freely.
step "panic-surface audit (ric-complete, ric; advisory)"
cargo clippy -p ric-complete -p ric --no-deps --offline -- \
  -W clippy::unwrap_used -W clippy::expect_used || true

printf '\nci.sh: all checks passed\n'

#!/usr/bin/env bash
# Full offline CI gate for the ric workspace.
#
# Runs the same checks the repository expects before every merge:
#   1. release build          (cargo build --release)
#   2. test suite, fast       (cargo test -q; heavy tests are #[ignore]d)
#   3. fault injection        (cargo test --test guard_robustness)
#   4. parallel scheduler     (cargo test --test par_differential,
#                              then a RIC_WORKERS=1 / RIC_WORKERS=4 matrix)
#   5. plan A/B               (cargo test --test plan_differential, then a
#                              RIC_WORKERS={1,4} matrix: the cost-based
#                              planned engine must be verdict-identical to
#                              the indexed engine on every decision)
#   6. reason A/B             (cargo test --test reason_differential, then a
#                              RIC_WORKERS={1,4} matrix: the symbolic
#                              pre-decision prover — certified V-minimization
#                              and static verdicts — must be verdict- and
#                              witness-identical to the full-V prepared path)
#   7. checkpoint/resume      (cargo test --test resume_differential, then a
#                              RIC_RESUME_K=2,5 x RIC_WORKERS={1,4} matrix:
#                              K-installment decisions must be identical to
#                              uninterrupted runs)
#   8. monitor differential   (cargo test --test monitor_differential, then
#                              a RIC_TXN_BATCH={1,8} x RIC_WORKERS={1,4}
#                              matrix: every incremental verdict must equal
#                              a from-scratch decision after every txn) and
#                              the monitor metamorphic suite (inversion,
#                              coalescing, splitting, monotonicity) plus the
#                              tombstone-edge suite (net no-op txns, digest
#                              stability, capped-memo eviction)
#   9. worker-panic faults    (guard_robustness quarantine/degradation/flush
#                              tests plus the ric-trace torn-record suite)
#  10. paper properties       (cargo test --test paper_properties)
#  11. static analysis        (cargo test -p ric-analysis, cargo test
#                              -p ric-reason,
#                              cargo test --test analysis_properties)
#  12. bench artifacts        (regen_tables --deadline-ms guard; the run
#                              fails if any shipped workload draws an
#                              Error-level analyzer diagnostic, and also
#                              streams a JSONL decision trace; then a
#                              bench_monitor regen smoke: BENCH_MONITOR.json
#                              must report all_ok — >=5x median speedup and
#                              verdict identity in every cell; then a
#                              bench_static regen smoke: BENCH_STATIC.json
#                              must report all_ok — >=2x on redundant-V,
#                              >=10x on statically-decidable cells, verdicts
#                              identical everywhere)
#  13. trace smoke            (the trace_decision example and the
#                              regen_tables --trace stream must round-trip
#                              through the ric-trace CLI: tree, prune, plan,
#                              and diff all parse and render; a malformed
#                              trace is rejected with a nonzero exit)
#  14. disabled probes        (cargo test -p ric-telemetry disabled_probe:
#                              Probe::disabled adds zero events, traced or
#                              not)
#  15. full test suite        (cargo test -q -- --include-ignored)
#  16. determinism lint       (scripts/lint_determinism.sh: no std hash
#                              containers or wall-clock reads in library
#                              crates outside the audited allowlist)
#  17. formatting             (cargo fmt --check)
#  18. lints                  (cargo clippy --all-targets -D warnings)
#  19. lints, workspace       (cargo clippy --workspace -D warnings)
#  20. lints, unwrap ban      (clippy -D clippy::unwrap_used/expect_used on
#                              library code; tests are exempt via clippy.toml)
#  21. docs                   (RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps:
#                              broken intra-doc links are build errors)
#
# Everything runs with --offline: the default build has zero third-party
# dependencies, so no network access is ever required. The proptest suites
# are feature-gated (`cargo test --features proptest`) and are NOT part of
# this gate — they need an environment that can fetch crates.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "build (release, offline)"
cargo build --release --offline

step "tests (fast tier: heavy instances are #[ignore]d)"
cargo test -q --offline

step "fault injection (deadline / cancel / panic degradation paths)"
cargo test -q --offline --test guard_robustness

step "parallel scheduler differential suite (default worker set {1,2,4,7})"
cargo test -q --offline --test par_differential

# Worker matrix: the differential suite honours RIC_WORKERS, so pin the
# degenerate single-worker pool and the standard 4-worker pool explicitly —
# the two configurations most likely to diverge if the deterministic merge
# regresses.
for workers in 1 4; do
  step "parallel scheduler differential suite (RIC_WORKERS=${workers})"
  RIC_WORKERS="${workers}" cargo test -q --offline --test par_differential
done

# Plan A/B: the planned engine fixes join orders from cost estimates but
# must change nothing else — every decision's verdict (and witness) under
# Engine::Planned must be identical to Engine::Indexed. The differential
# suite honours RIC_WORKERS, so pin the single-worker and 4-worker pools
# explicitly alongside the default run.
step "plan differential suite (planned vs indexed verdict identity, default)"
cargo test -q --offline --test plan_differential
for workers in 1 4; do
  step "plan differential suite (RIC_WORKERS=${workers})"
  RIC_WORKERS="${workers}" cargo test -q --offline --test plan_differential
done

# Reason A/B: the symbolic pre-decision prover may drop implied constraints
# and short-circuit statically decided settings, but every verdict, witness,
# and pinned counter must match the full-V prepared path. The suite honours
# RIC_WORKERS, so pin the single-worker and 4-worker pools explicitly
# alongside the default run.
step "reason differential suite (reasoned vs full-V verdict identity, default)"
cargo test -q --offline --test reason_differential
for workers in 1 4; do
  step "reason differential suite (RIC_WORKERS=${workers})"
  RIC_WORKERS="${workers}" cargo test -q --offline --test reason_differential
done

# Resume equivalence: a decision finished in K installments must be
# verdict-, witness-, and counter-identical to one uninterrupted run. The
# suite honours RIC_RESUME_K and RIC_WORKERS, so pin the K x workers matrix
# explicitly alongside the default run.
step "checkpoint/resume differential suite (default K set {2,5})"
cargo test -q --offline --test resume_differential
for workers in 1 4; do
  step "checkpoint/resume differential suite (RIC_RESUME_K=2,5 RIC_WORKERS=${workers})"
  RIC_RESUME_K=2,5 RIC_WORKERS="${workers}" \
    cargo test -q --offline --test resume_differential
done

# Monitor differential: after EVERY transaction in a seeded stream, the
# incremental verdict must equal a from-scratch prepared decision on the
# same state. The suite honours RIC_TXN_BATCH (ops per transaction) and
# RIC_WORKERS, so pin the batch x workers matrix explicitly alongside the
# default run.
step "monitor differential suite (incremental vs from-scratch, default)"
cargo test -q --offline --test monitor_differential
for workers in 1 4; do
  for batch in 1 8; do
    step "monitor differential suite (RIC_TXN_BATCH=${batch} RIC_WORKERS=${workers})"
    RIC_TXN_BATCH="${batch}" RIC_WORKERS="${workers}" \
      cargo test -q --offline --test monitor_differential
  done
done

# Monitor metamorphic: inverse transactions restore state bitwise, op
# coalescing and singleton splitting change nothing observable, and
# insert-only streams keep Complete verdicts monotone.
step "monitor metamorphic suite (inversion, coalescing, splitting, monotonicity)"
cargo test -q --offline --test monitor_metamorphic

# Tombstone edges: insert→delete and delete→reinsert within one txn are net
# no-ops, the state digest is content-addressed (stable across commuting op
# orderings), and a capacity-1 verdict memo evicts without changing verdicts.
step "monitor tombstone-edge suite (net no-ops, digest stability, memo cap)"
cargo test -q --offline --test monitor_tombstone_edges

# Worker-death fault matrix: an injected mid-chunk panic must recover (one
# death) or degrade Parallel -> Indexed (repeated deaths), never change a
# verdict; the panic path must still flush buffered telemetry sinks.
step "worker-panic fault matrix (quarantine, degradation ladder, sink flush)"
cargo test -q --offline --test guard_robustness worker_panic
cargo test -q --offline --test guard_robustness worker_deaths
cargo test -q --offline --test guard_robustness flushed_on_the_facade_panic_path
cargo test -q --offline -p ric-bench --test trace_load

step "paper-property suite (monotonicity, C1-C4, witnesses, Prop 2.1)"
cargo test -q --offline --test paper_properties

step "static analysis suite (diagnostics, certified downgrades, gated dispatch)"
cargo test -q --offline -p ric-analysis
cargo test -q --offline -p ric-reason
cargo test -q --offline --test analysis_properties

# Regenerate the bench artifacts under a wall-clock guard. regen_tables runs
# every shipped workload through the analyzer first and exits nonzero on any
# Error-level diagnostic, so a broken bench setting fails CI here rather than
# silently producing garbage artifacts. The same run streams a JSONL decision
# trace (into a temp dir — wall-clock micros would make a tracked trace file
# churn on every run) for the smoke step below.
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
step "bench artifact regeneration (BENCH_*.json + decision trace, deadline-guarded)"
cargo run -q --release --offline -p ric-bench --bin regen_tables -- --deadline-ms 15000 \
  --trace "${trace_dir}/regen.jsonl" > /dev/null

# Monitor bench smoke: regenerate BENCH_MONITOR.json in place and require the
# artifact's own verdict — the run fails if any cell misses the >=5x median
# speedup bar or sees an incremental/from-scratch verdict mismatch.
step "monitor bench regeneration (BENCH_MONITOR.json, >=5x + verdict identity)"
cargo run -q --release --offline -p ric-bench --bin bench_monitor > /dev/null
grep -q '"all_ok": true' BENCH_MONITOR.json || {
  echo "ci.sh: BENCH_MONITOR.json regenerated with all_ok != true" >&2
  exit 1
}

# Static-reasoning bench smoke: regenerate BENCH_STATIC.json in place and
# require the artifact's own verdict — the run fails if the redundant-V cells
# miss >=2x, the statically-decidable cells miss >=10x, or any repetition sees
# a reasoned/full-V verdict mismatch.
step "static-reasoning bench regeneration (BENCH_STATIC.json, >=2x/>=10x + verdict identity)"
cargo run -q --release --offline -p ric-bench --bin bench_static > /dev/null
grep -q '"all_ok": true' BENCH_STATIC.json || {
  echo "ci.sh: BENCH_STATIC.json regenerated with all_ok != true" >&2
  exit 1
}

# The observability round trip: every JSONL trace the workspace emits must
# parse and render through the ric-trace CLI, and a malformed trace must be
# rejected loudly (exit 1), not rendered as garbage.
step "trace smoke (JSONL decision traces round-trip through ric-trace)"
ric_trace() { cargo run -q --release --offline -p ric-bench --bin ric-trace -- "$@"; }
cargo run -q --release --offline --example trace_decision \
  > "${trace_dir}/example.jsonl" 2> /dev/null
for trace in example regen; do
  ric_trace tree  "${trace_dir}/${trace}.jsonl" > /dev/null
  ric_trace prune "${trace_dir}/${trace}.jsonl" > /dev/null
  ric_trace plan  "${trace_dir}/${trace}.jsonl" > /dev/null
done
ric_trace diff "${trace_dir}/example.jsonl" "${trace_dir}/regen.jsonl" > /dev/null
ric_trace diff BENCH_TABLE1.json BENCH_TABLE1.json > /dev/null
head -1 "${trace_dir}/example.jsonl" > "${trace_dir}/truncated.jsonl"
if ric_trace tree "${trace_dir}/truncated.jsonl" > /dev/null 2>&1; then
  echo "ci.sh: ric-trace accepted a malformed trace (unclosed decision span)" >&2
  exit 1
fi

# Tracing must be free when off: a disabled probe records zero events and
# never runs a note closure, with or without a TraceState attached.
step "disabled probes add zero events"
cargo test -q --offline -p ric-telemetry disabled_probe

step "tests (full: --include-ignored picks up the heavy instances)"
cargo test -q --offline -- --include-ignored

# Determinism lint: std hash containers and wall-clock reads in library
# crates are banned outside the audited allowlist — either would let run-to-
# run nondeterminism leak into verdicts, witnesses, or artifacts.
step "determinism lint (no HashMap/HashSet or wall-clock in library crates)"
bash scripts/lint_determinism.sh

step "formatting"
cargo fmt --all -- --check

step "clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

# Library code is held to the fatal bar across every workspace crate (the
# --all-targets pass above already covers tests, examples, and benches; this
# pass pins the library surface explicitly so a lint regression in any crate
# fails CI even if target filtering above changes).
step "clippy (workspace libraries, warnings are errors)"
cargo clippy --workspace --offline -- -D warnings

# Library code must not unwrap/expect: every invariant is either a typed
# error or an explicit unreachable!() with its justification. Tests keep
# unwrap ergonomics via clippy.toml (allow-unwrap-in-tests/expect-in-tests).
step "clippy (unwrap/expect ban on library code)"
cargo clippy --offline -p ric-complete -p ric -p ric-plan -p ric-monitor -p ric-reason -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Docs are part of the API contract: a broken intra-doc link or malformed
# doc attribute fails CI rather than shipping a dead reference.
step "docs (rustdoc, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

printf '\nci.sh: all checks passed\n'

#!/usr/bin/env bash
# Full offline CI gate for the ric workspace.
#
# Runs the same checks the repository expects before every merge:
#   1. release build          (cargo build --release)
#   2. test suite             (cargo test -q)
#   3. formatting             (cargo fmt --check)
#   4. lints                  (cargo clippy --all-targets -D warnings)
#
# Everything runs with --offline: the default build has zero third-party
# dependencies, so no network access is ever required. The proptest suites
# are feature-gated (`cargo test --features proptest`) and are NOT part of
# this gate — they need an environment that can fetch crates.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "build (release, offline)"
cargo build --release --offline

step "tests"
cargo test -q --offline

step "formatting"
cargo fmt --all -- --check

step "clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

printf '\nci.sh: all checks passed\n'

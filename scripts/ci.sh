#!/usr/bin/env bash
# Full offline CI gate for the ric workspace.
#
# Runs the same checks the repository expects before every merge:
#   1. release build          (cargo build --release)
#   2. test suite, fast       (cargo test -q; heavy tests are #[ignore]d)
#   3. fault injection        (cargo test --test guard_robustness)
#   4. full test suite        (cargo test -q -- --include-ignored)
#   5. formatting             (cargo fmt --check)
#   6. lints                  (cargo clippy --all-targets -D warnings)
#   7. lints, workspace       (cargo clippy --workspace -D warnings)
#
# Everything runs with --offline: the default build has zero third-party
# dependencies, so no network access is ever required. The proptest suites
# are feature-gated (`cargo test --features proptest`) and are NOT part of
# this gate — they need an environment that can fetch crates.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "build (release, offline)"
cargo build --release --offline

step "tests (fast tier: heavy instances are #[ignore]d)"
cargo test -q --offline

step "fault injection (deadline / cancel / panic degradation paths)"
cargo test -q --offline --test guard_robustness

step "tests (full: --include-ignored picks up the heavy instances)"
cargo test -q --offline -- --include-ignored

step "formatting"
cargo fmt --all -- --check

step "clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

# Library code is held to the fatal bar across every workspace crate (the
# --all-targets pass above already covers tests, examples, and benches; this
# pass pins the library surface explicitly so a lint regression in any crate
# fails CI even if target filtering above changes).
step "clippy (workspace libraries, warnings are errors)"
cargo clippy --workspace --offline -- -D warnings

printf '\nci.sh: all checks passed\n'

#!/usr/bin/env bash
# lint_determinism.sh — grep-based determinism lint for the workspace.
#
# The deciders promise bit-identical verdicts, witnesses, and counters across
# runs, engines, and worker counts. Two classes of std API quietly break that
# promise:
#
#   hash   std::collections::HashMap/HashSet — iteration order is randomized
#          per process, so any iteration feeding a verdict-affecting or
#          serialized path (witness choice, counter attribution, artifact
#          output) diverges between runs. The workspace convention is
#          BTreeMap/BTreeSet; hash containers are allowed only for pure
#          point-lookup structures that are never iterated into an ordered
#          output (see the allowlist).
#
#   clock  Instant::now/SystemTime::now — wall-clock reads outside the
#          sanctioned timebases (the budget deadline in core/guard.rs, the
#          span timebase in telemetry/probe.rs) let timing leak into decision
#          state. The bench crate is exempt wholesale: measuring wall-clock
#          is its purpose, and it never feeds a verdict.
#
# Findings are suppressed per file through scripts/lint_determinism_allow.txt
# (format: "<rule> <path> — <justification>"). Add a line there only with a
# reason the next reader can audit.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/lint_determinism_allow.txt
status=0

allowed() { # allowed <rule> <file>
  grep -Eq "^$1 $2( |$)" "$ALLOWLIST"
}

report() { # report <rule> <lines…>
  local rule="$1"
  shift
  local hits="$*"
  [ -z "$hits" ] && return 0
  while IFS= read -r line; do
    [ -z "$line" ] && continue
    local file="${line%%:*}"
    if ! allowed "$rule" "$file"; then
      echo "determinism lint [$rule]: $line"
      echo "  (fix it, or allowlist '$rule $file — <reason>' in $ALLOWLIST)"
      status=1
    fi
  done <<<"$hits"
}

# Rule `hash`: std hash containers in library crates.
hash_hits=$(grep -rn --include='*.rs' -E 'std::collections::(HashMap|HashSet)' crates/*/src || true)
report hash "$hash_hits"

# Rule `clock`: wall-clock reads outside the bench crate.
clock_hits=$(grep -rn --include='*.rs' -E '(Instant|SystemTime)::now' crates/*/src \
  | grep -v '^crates/bench/' || true)
report clock "$clock_hits"

if [ "$status" -eq 0 ]; then
  echo "determinism lint: ok"
fi
exit "$status"

//! Designing answerable queries: RCQP as a design-time tool (Section 4).
//!
//! Run with `cargo run --example query_design`.
//!
//! Before shipping a report or dashboard query, ask whether *any* database
//! the enterprise could maintain would answer it completely under the
//! current master data. Queries fall into three camps:
//!
//! * **bounded** — head values pinned by master data or finite domains
//!   (Propositions 4.2/4.3): completable, and the witness shows what a
//!   complete database looks like;
//! * **blockable** — completable only through a database that *blocks*
//!   further additions via the constraints (Example 4.1's `D⁻`);
//! * **unbounded** — fresh values always escape: redesign the query or
//!   expand the master data.

use ric::prelude::*;

fn main() {
    // Schema: assignments of employees to projects, with a skill register.
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Assign", &["emp", "proj"]),
        RelationSchema::new(
            "Skill",
            vec![
                Attribute::new("emp"),
                Attribute::finite("level", [Value::str("junior"), Value::str("senior")]),
            ],
        ),
    ])
    .expect("schema");
    let assign = schema.rel_id("Assign").unwrap();
    let master = Schema::from_relations(vec![RelationSchema::infinite("Projects", &["proj"])])
        .expect("schema");
    let projects = master.rel_id("Projects").unwrap();
    let mut dm = Database::empty(&master);
    for p in ["apollo", "gemini"] {
        dm.insert(projects, Tuple::new([Value::str(p)]));
    }
    // Constraints: assigned projects come from the master project registry,
    // and each employee works on at most one project (an FD in CQ).
    let mut v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(assign, vec![1])),
        projects,
        vec![0],
    )]);
    let fd = Fd::new(assign, vec![0], vec![1]);
    for cc in ric::constraints::compile::fd_to_ccs(&fd, &schema) {
        v.push(cc);
    }
    let setting = Setting::new(schema.clone(), master, dm, v);
    let budget = SearchBudget {
        fresh_values: 3,
        ..SearchBudget::default()
    };

    let candidates: Vec<(&str, Query)> = vec![
        (
            "projects of employee 'ada' (master-bounded head)",
            parse_cq(&schema, "Q(P) :- Assign('ada', P).")
                .unwrap()
                .into(),
        ),
        (
            "skill level of 'ada' (finite-domain head, E1)",
            parse_cq(&schema, "Q(L) :- Skill('ada', L).")
                .unwrap()
                .into(),
        ),
        (
            "is 'ada' on apollo? (blockable via the FD)",
            parse_cq(&schema, "Q(E) :- Assign(E, 'apollo'), E = 'ada'.")
                .unwrap()
                .into(),
        ),
        (
            "everyone on apollo (unbounded head)",
            parse_cq(&schema, "Q(E) :- Assign(E, 'apollo').")
                .unwrap()
                .into(),
        ),
    ];

    for (label, q) in candidates {
        print!("{label:55} → ");
        match rcqp(&setting, &q, &budget).expect("rcqp") {
            QueryVerdict::Nonempty { witness: Some(w) } => {
                let verdict = rcdp(&setting, &q, &w, &budget).expect("rcdp");
                println!(
                    "answerable; a complete database has {} tuple(s) [{verdict}]",
                    w.tuple_count()
                );
            }
            QueryVerdict::Nonempty { witness: None } => {
                println!("answerable (witness construction exceeded budget)")
            }
            QueryVerdict::Empty => println!("NOT answerable — redesign or expand master data"),
            QueryVerdict::Unknown { stats } => println!("undetermined ({stats})"),
        }
    }
}

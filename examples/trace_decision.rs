//! Hierarchical decision tracing, end to end.
//!
//! Run with `cargo run --example trace_decision`. The example streams the
//! full event stream of two decisions — an RCDP completeness check and an
//! RCQP existence check — as JSONL to **stdout**, which is exactly the
//! format the `ric-trace` CLI ingests:
//!
//! ```text
//! cargo run -q --example trace_decision > trace.jsonl
//! cargo run -q -p ric-bench --bin ric-trace -- tree  trace.jsonl
//! cargo run -q -p ric-bench --bin ric-trace -- prune trace.jsonl
//! ```
//!
//! The structured [`Explain`] that rides on every `try_` verdict is rendered
//! to **stderr**, so the JSONL stream stays clean: stdout is the machine
//! artifact, stderr the human narration. The CI trace smoke step pipes
//! stdout into `ric-trace` and fails if either side stops parsing.

use ric::prelude::*;
use ric::JsonlSink;

fn main() {
    // ── The setting ────────────────────────────────────────────────────
    // Supt(eid, cid) bounded by the DCust master list; the database only
    // knows about a strict subset of the master customers, so the planted
    // answer is "incomplete".
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    for c in 0..6 {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let mut db = Database::empty(&schema);
    for c in 0..4 {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str(format!("c{c}"))]),
        );
    }

    // ── The traced decisions ───────────────────────────────────────────
    // One JSONL sink over stdout, one TraceState shared by both decisions:
    // span ids grow monotonically across the stream, and each decision
    // opens its own root `decision` span (parent 0) — the segmentation
    // marker `ric-trace` cuts on.
    let sink = JsonlSink::new(std::io::stdout());
    let trace = TraceState::new();
    let budget = SearchBudget::default();

    let rcdp_decision = try_rcdp_probed(
        &setting,
        &q,
        &db,
        &budget,
        Probe::attached(&sink).with_trace(&trace),
    )
    .expect("well-formed instance");

    let rcqp_decision = try_rcqp_probed(
        &setting,
        &q,
        &budget,
        Probe::attached(&sink).with_trace(&trace),
    )
    .expect("well-formed instance");
    sink.flush();

    // ── The Explain artifacts ──────────────────────────────────────────
    // Same data, already rebuilt in process: span tree with both timebases,
    // outcome, counters. Printed to stderr to keep stdout machine-clean.
    eprintln!("RCDP verdict: {}", rcdp_decision.verdict);
    eprintln!("{}", rcdp_decision.explain.render());
    eprintln!("RCQP verdict: {}", rcqp_decision.verdict);
    eprintln!("{}", rcqp_decision.explain.render());
}

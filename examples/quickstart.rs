//! Quickstart: is my database complete enough to answer this query?
//!
//! Run with `cargo run --example quickstart`.
//!
//! The scenario is the paper's opening example: a support table that is
//! open-world in general, but whose *customer* column is bounded by the
//! enterprise's master customer list. The example walks through the full
//! lifecycle: decide → inspect the counterexample → collect the missing
//! tuples → decide again.

use ric::complete::extend::{complete_extension, CompletionOutcome};
use ric::prelude::*;

fn main() {
    // 1. Schemas: the operational table and the master list.
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .expect("schema");
    let supt = schema.rel_id("Supt").unwrap();
    let master =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).expect("schema");
    let dcust = master.rel_id("DCust").unwrap();

    // 2. Master data: the complete, closed-world list of domestic customers.
    let mut dm = Database::empty(&master);
    for c in ["acme", "globex", "initech"] {
        dm.insert(dcust, Tuple::new([Value::str(c)]));
    }

    // 3. One containment constraint: every supported customer is a master
    //    customer — π_cid(Supt) ⊆ π_cid(DCust).
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![2])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), master, dm, v);

    // 4. The operational database only knows one assignment so far.
    let mut db = Database::empty(&schema);
    db.insert(
        supt,
        Tuple::new([Value::str("e0"), Value::str("sales"), Value::str("acme")]),
    );

    // 5. The question: do we already know *all* customers employee e0
    //    supports?
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
        .expect("query")
        .into();
    let budget = SearchBudget::default();

    println!("query: customers supported by e0");
    println!("database:\n{db}");
    match rcdp(&setting, &q, &db, &budget).expect("decide") {
        Verdict::Complete => println!("verdict: complete — trust the answer"),
        Verdict::Incomplete(ce) => {
            println!("verdict: INCOMPLETE");
            println!("  a legal extension would add: {}", ce.delta);
            println!("  yielding the new answer tuple {}", ce.new_answer);
        }
        Verdict::Unknown { stats } => println!("verdict: unknown ({stats})"),
    }

    // 6. Paradigm 2 (Section 2.3): what must be collected?
    match complete_extension(&setting, &q, &db, &budget).expect("complete") {
        CompletionOutcome::Completed { added, result } => {
            println!("\nto make the answer complete, collect:\n{added}");
            let verdict = rcdp(&setting, &q, &result, &budget).expect("decide");
            println!("after collection the verdict is: {verdict}");
            let answers = q.eval(&result).expect("eval");
            println!("and the certified-complete answer is:");
            for t in answers {
                println!("  {t}");
            }
        }
        other => println!("completion outcome: {other:?}"),
    }

    // 7. Paradigm 3: some queries can never be answered completely under the
    //    current master data — e.g. exposing the (unconstrained) employees.
    let open: Query = parse_cq(&schema, "Q(E) :- Supt(E, D, C).")
        .expect("query")
        .into();
    match rcqp(&setting, &open, &budget).expect("decide") {
        QueryVerdict::Empty => println!(
            "\n'all employees' can NEVER be answered completely: \
             expand the master data first"
        ),
        other => println!("\nunexpected: {other:?}"),
    }
}

//! Guarding long-running decisions: deadlines, cancellation, and panic
//! isolation on the CRM scenario.
//!
//! Run with `cargo run --example guarded_decisions`.
//!
//! The decidable cells are Σᵖ₂ / NEXPTIME-complete, so a service embedding
//! the deciders needs more than count budgets: a wall-clock deadline per
//! decision, a way to abort an in-flight decision from another thread, and a
//! guarantee that a defect cannot unwind through the request handler. All
//! three degrade the same way — a sound `Unknown` (or a typed error), never
//! a wrong answer. This example exercises each path on the Section 2.3
//! customer-relationship-management setting and prints the structured
//! `SearchStats` the degraded verdicts carry.

use std::time::Duration;

use ric::mdm::{CrmScenario, ScenarioParams};
use ric::prelude::*;
use ric::FaultSink;

fn main() {
    let mut rng = ric::SplitMix64::seed_from_u64(2026);
    let sc = CrmScenario::generate(
        ScenarioParams {
            n_domestic: 5,
            n_international: 2,
            n_employees: 3,
            n_support: 7,
            at_most_k: Some(2),
            n_manage: 2,
        },
        &mut rng,
    );
    let q2 = sc.q2();

    // ── 1. Wall-clock deadline ─────────────────────────────────────────
    // An already-expired deadline is the worst case; the guard observes it
    // at its very first poll, before any enumeration work is granted. (Any
    // expired deadline degrades identically, just later.)
    let deadline_budget = SearchBudget::default().with_deadline(Duration::ZERO);
    let verdict = rcdp(&sc.setting, &q2, &sc.db, &deadline_budget).expect("rcdp");
    println!("Q2 under an expired wall-clock deadline:");
    report(&verdict);

    // ── 2. Cancellation from another thread ────────────────────────────
    // The CancelToken is the cross-thread handle: clone it anywhere, cancel
    // from any thread, and the running decision stops at its next
    // cooperative poll. Here the canceller runs (and is joined) before the
    // decision starts, so the abort is observed with zero work done.
    let token = CancelToken::new();
    let canceller = {
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
    };
    canceller.join().expect("canceller thread");
    let budget = SearchBudget::default();
    let guard = Guard::new(&budget).with_cancel(token);
    let verdict =
        rcdp_guarded(&sc.setting, &q2, &sc.db, &budget, &guard, Probe::disabled()).expect("rcdp");
    println!("\nQ2 after a cancellation from another thread:");
    report(&verdict);

    // ── 3. Deterministic fault injection ───────────────────────────────
    // Tests (and demos) need these paths without sleeps or timing races: a
    // FaultPlan fires a simulated deadline at an exact guard tick.
    let guard = Guard::new(&budget).with_fault_plan(FaultPlan::new().deadline_at_tick(8));
    let collector = Collector::new();
    let verdict = rcdp_guarded(
        &sc.setting,
        &q2,
        &sc.db,
        &budget,
        &guard,
        Probe::attached(&collector),
    )
    .expect("rcdp");
    println!("\nQ2 with a simulated deadline at guard tick 8:");
    report(&verdict);
    for i in &collector.report().interrupts {
        println!(
            "  telemetry: {} -> {} @ tick {}",
            i.name, i.reason, i.at_tick
        );
    }

    // ── 4. Panic isolation at the facade ───────────────────────────────
    // A panic — ours, or in a user-supplied telemetry sink, as simulated
    // here — must not unwind through a request handler. The try_* entry
    // points convert it into a typed DecisionError that carries the
    // decision-path notes recorded before the fault.
    let faulty_sink = FaultSink::new("rcdp.enumerate", None);
    // Silence the default panic hook while the fault fires — catch_unwind
    // still runs it, and this demo's panic is intentional.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = ric::try_rcdp_probed(
        &sc.setting,
        &q2,
        &sc.db,
        &budget,
        Probe::attached(&faulty_sink),
    )
    .expect_err("the injected panic surfaces as an error");
    std::panic::set_hook(hook);
    println!("\nQ2 with a panicking telemetry sink, behind try_rcdp:");
    println!("error: {err}");
    if let DecisionError::Panic { notes, .. } = &err {
        for note in notes {
            println!("  note before panic: {note}");
        }
    }

    // And on a clean run the try_ variant is just the decider:
    let verdict = ric::try_rcdp(&sc.setting, &q2, &sc.db, &budget).expect("no fault this time");
    println!("\nQ2 with no faults (try_rcdp):");
    report(&verdict);
}

/// Print a verdict plus the structured `SearchStats` when it is `Unknown`.
fn report(verdict: &Verdict) {
    println!("verdict: {verdict}");
    if let Verdict::Unknown { stats } = verdict {
        println!("  limit      : {}", stats.limit.name());
        println!("  valuations : {}", stats.valuations);
        println!("  candidates : {}", stats.candidates);
        println!("  detail     : {}", stats.detail);
    }
}

//! Streaming completeness monitoring over a live transaction stream.
//!
//! Run with `cargo run --example monitor_stream`.
//!
//! A support desk keeps an operational table `Supt(eid, cid)` that is
//! partially closed by the master customer list `Cust_m`: every supported
//! customer must be a known customer. The dashboard question — "is the list
//! of supported customers complete?" — is an RCDP decision that must stay
//! answered while transactions stream in. A [`ric::Monitor`] keeps the
//! verdict current incrementally: transactions outside the setting's
//! footprint cost O(1), insert-only transactions ride the monotonicity fast
//! path, and a repaired database replays its memoized verdict instead of
//! re-searching.

use ric::prelude::*;
use ric::{Monitor, Op, Status, Txn};

fn main() {
    // Operational schema: support assignments plus an unrelated audit log.
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "cid"]),
        RelationSchema::infinite("Audit", &["entry"]),
    ])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let audit = schema.rel_id("Audit").unwrap();

    // Master data: the closed-world list of customers.
    let master = Schema::from_relations(vec![RelationSchema::infinite("Cust", &["cid"])]).unwrap();
    let cust = master.rel_id("Cust").unwrap();
    let mut dm = Database::empty(&master);
    for c in ["c1", "c2"] {
        dm.insert(cust, Tuple::new([Value::str(c)]));
    }

    // Constraint: supported customers are bounded by the master list.
    let body = parse_cq(&schema, "Q(C) :- Supt(E, C).").unwrap();
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(body),
        cust,
        vec![0],
    )]);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt(E, C).").unwrap().into();

    let mut mon = Monitor::new(schema, master, dm, SearchBudget::default()).unwrap();
    let id = mon.register("supported-customers", v, q).unwrap();
    report(&mon, id, "registered on the empty database");

    // c2 is still unsupported: incomplete. Cover it and the verdict flips —
    // every admissible extension now stays inside the master list.
    let txn = Txn::new([
        Op::insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")])),
        Op::insert(supt, Tuple::new([Value::str("e1"), Value::str("c2")])),
    ]);
    for change in mon.apply(&txn).unwrap() {
        println!("  change: {change}");
    }
    report(&mon, id, "after covering the master list");

    // Insert-only growth inside the master list keeps Complete through the
    // monotonicity fast path — no search runs.
    let growth = Txn::new([Op::insert(
        supt,
        Tuple::new([Value::str("e2"), Value::str("c1")]),
    )]);
    mon.apply(&growth).unwrap();
    report(&mon, id, "after insert-only growth");

    // A bad insert breaks partial closure; deleting it restores the old
    // verdict from the fingerprint memo — again without a search.
    let bad = Tuple::new([Value::str("e9"), Value::str("c9")]);
    mon.apply(&Txn::new([Op::insert(supt, bad.clone())]))
        .unwrap();
    report(&mon, id, "after an out-of-master insert");
    mon.apply(&Txn::new([Op::delete(supt, bad)])).unwrap();
    report(&mon, id, "after repairing it");

    // Audit churn is outside the footprint: O(1) skip, no re-decision.
    let noise = Txn::new([Op::insert(audit, Tuple::new([Value::str("login e0")]))]);
    mon.apply(&noise).unwrap();
    report(&mon, id, "after unrelated audit churn");

    let c = mon.counters();
    println!(
        "work: {} decisions, {} memo hits, {} fast-complete keeps, {} skips, {} incremental pc checks",
        c.redecide, c.memo_hit, c.fast_complete, c.skip, c.cc_delta
    );
}

fn report(mon: &Monitor, id: ric::SettingId, when: &str) {
    let status = mon.verdict(id).unwrap().status();
    let mark = match status {
        Status::Complete => "✔",
        Status::Incomplete => "✘",
        Status::Unknown => "?",
        Status::NotPartiallyClosed => "⚠",
    };
    println!("[txn {}] {mark} {status} — {when}", mon.txn_seq());
}

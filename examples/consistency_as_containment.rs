//! Consistency and completeness in one framework (Section 2.2).
//!
//! Run with `cargo run --example consistency_as_containment`.
//!
//! Proposition 2.1: denial constraints and conditional functional
//! dependencies compile into containment constraints in CQ, and conditional
//! inclusion dependencies into a CC in FO — so the same machinery that
//! bounds a database by master data also detects dirty data.

use ric::constraints::{classical, compile};
use ric::prelude::*;

fn main() {
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
        RelationSchema::infinite("Cust", &["cid", "status"]),
    ])
    .expect("schema");
    let supt = schema.rel_id("Supt").unwrap();
    let cust = schema.rel_id("Cust").unwrap();
    let dm = Database::with_relations(0); // ⊆ ∅ constraints need no master data

    // A CFD: within the BU department, eid determines cid
    // (the paper's Section 2.2 example).
    let cfd = Cfd {
        rel: supt,
        lhs: vec![0],
        rhs: vec![2],
        lhs_pattern: vec![(1, Value::str("BU"))],
        rhs_pattern: vec![],
    };
    let cfd_ccs = compile::cfd_to_ccs(&cfd, &schema);
    println!(
        "CFD 'dept=BU: eid → cid' compiles to {} containment constraint(s)",
        cfd_ccs.len()
    );

    // A denial constraint: nobody supports more than 2 customers.
    let denial = classical::at_most_k_per_key(supt, 0, 2, 2, 3);
    let denial_cc = compile::denial_to_cc(&denial);

    // A CIND: premium support implies a gold customer record.
    let cind = Cind {
        lhs_rel: supt,
        lhs_cols: vec![2],
        rhs_rel: cust,
        rhs_cols: vec![0],
        lhs_pattern: vec![(1, Value::str("premium"))],
        rhs_pattern: vec![(1, Value::str("gold"))],
    };
    let cind_cc = compile::cind_to_cc(&cind, &schema);
    println!("CIND compiles to a containment constraint in FO\n");

    // Check a series of databases against all three, both directly and
    // through the compiled CCs — the verdicts always agree.
    let mut scenarios: Vec<(&str, Database)> = Vec::new();

    let mut clean = Database::empty(&schema);
    clean.insert(
        supt,
        Tuple::new([Value::str("e1"), Value::str("BU"), Value::str("c1")]),
    );
    clean.insert(
        supt,
        Tuple::new([Value::str("e2"), Value::str("premium"), Value::str("c2")]),
    );
    clean.insert(cust, Tuple::new([Value::str("c2"), Value::str("gold")]));
    scenarios.push(("clean", clean.clone()));

    let mut cfd_dirty = clean.clone();
    cfd_dirty.insert(
        supt,
        Tuple::new([Value::str("e1"), Value::str("BU"), Value::str("c9")]),
    );
    scenarios.push(("CFD violation (e1 has two BU customers)", cfd_dirty));

    let mut denial_dirty = clean.clone();
    for c in ["x1", "x2", "x3"] {
        denial_dirty.insert(
            supt,
            Tuple::new([Value::str("e3"), Value::str("d"), Value::str(c)]),
        );
    }
    scenarios.push(("denial violation (e3 supports three)", denial_dirty));

    let mut cind_dirty = clean.clone();
    cind_dirty.insert(
        supt,
        Tuple::new([Value::str("e4"), Value::str("premium"), Value::str("c9")]),
    );
    scenarios.push(("CIND violation (premium without gold record)", cind_dirty));

    for (label, db) in scenarios {
        let direct = cfd.satisfied(&db) && denial.satisfied(&db) && cind.satisfied(&db);
        let compiled = cfd_ccs
            .iter()
            .chain(std::iter::once(&denial_cc))
            .chain(std::iter::once(&cind_cc))
            .all(|cc| cc.satisfied(&db, &dm).expect("evaluable"));
        assert_eq!(direct, compiled, "Proposition 2.1 equivalence");
        println!(
            "{label:50} direct: {:5}  compiled CCs: {:5}",
            if direct { "ok" } else { "DIRTY" },
            if compiled { "ok" } else { "DIRTY" },
        );
    }

    println!(
        "\nthe direct checkers and the compiled containment constraints agree — \
              consistency is enforced by the same partially-closed machinery"
    );
}

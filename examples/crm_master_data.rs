//! The full CRM walkthrough of Section 2.3, on a generated scenario.
//!
//! Run with `cargo run --example crm_master_data`.
//!
//! Shows the three relative-completeness paradigms working together on the
//! paper's customer-relationship-management setting: master customer list
//! `DCust`, operational tables `Cust` / `Supt` / `Manage`, constraint `φ0`
//! (domestic customers bounded by master data) and optionally `φ1` (support
//! cardinality).

use ric::mdm::{assess, guide_collection, needs_master_expansion, Assessment, Guidance};
use ric::mdm::{CrmScenario, ScenarioParams};
use ric::prelude::*;

fn main() {
    let mut rng = ric::SplitMix64::seed_from_u64(2026);
    let sc = CrmScenario::generate(
        ScenarioParams {
            n_domestic: 5,
            n_international: 2,
            n_employees: 3,
            n_support: 7,
            at_most_k: Some(2),
            n_manage: 2,
        },
        &mut rng,
    );
    let budget = SearchBudget::default();
    println!("master customers: {}", sc.setting.dm.tuple_count());
    println!("operational database:\n{}", sc.db);

    // ── Paradigm 1: assess before trusting ─────────────────────────────
    let q2 = sc.q2();
    println!("Q2 = customers supported by e0");
    match assess(&sc.setting, &q2, &sc.db, &budget).expect("assess") {
        Assessment::Trustworthy => println!("  the current answer is complete"),
        Assessment::Untrustworthy { example_gap } => {
            println!("  NOT complete — e.g. this could still be added:");
            println!("    {}", example_gap.delta);
        }
        Assessment::Inconclusive { stats } => println!("  inconclusive: {stats}"),
    }

    // ── Paradigm 2: what to collect ─────────────────────────────────────
    match guide_collection(&sc.setting, &q2, &sc.db, &budget).expect("guide") {
        Guidance::AlreadyComplete => println!("  nothing to collect"),
        Guidance::Collect { missing } => {
            println!("  collect these tuples to close the gap (φ1 bounds the distance):");
            println!("{missing}");
        }
        Guidance::ExpandMasterData => {
            println!("  no amount of collection helps — master data is the bottleneck")
        }
        Guidance::Inconclusive { stats } => println!("  inconclusive: {stats}"),
    }

    // ── Paradigm 3: which queries need more master data ────────────────
    for (name, q) in [
        ("Q0 (ac=908 customers)", sc.q0()),
        ("Q0' (all customers)", sc.q0_prime()),
    ] {
        match needs_master_expansion(&sc.setting, &q, &budget).expect("rcqp") {
            Some(true) => println!("{name}: needs master-data expansion"),
            Some(false) => println!("{name}: answerable completely with the right data"),
            None => println!("{name}: undetermined within budget"),
        }
    }

    // ── Language relativity (Example 1.1, Q3) ──────────────────────────
    let fp = sc.q3_datalog();
    let verdict = rcdp(&sc.setting, &fp, &sc.db, &budget).expect("rcdp");
    println!("Q3 (datalog ancestors of e0): {verdict}");
    let cq = sc.q3_cq_two_hops();
    let verdict = rcdp(&sc.setting, &cq, &sc.db, &budget).expect("rcdp");
    println!("Q3 (two-hop CQ): {verdict}");
}

//! Static analysis in front of the deciders.
//!
//! Run with `cargo run --example analyze_setting`.
//!
//! Builds a small support setting whose query is written in FO syntax but is
//! really a conjunctive query, runs `ric::analyze` to get the diagnostic
//! report and the certified fragment downgrades, and then lets the
//! analysis-gated entry point `try_rcdp_analyzed` dispatch the decision to
//! the cheap Σᵖ₂ CQ cell of Table I. A second, deliberately broken setting
//! shows the Error path: the gated entry point rejects it with
//! `DecisionError::Rejected` before any search starts.

use ric::prelude::*;
use ric::query::{Atom, EfoExpr, FoExpr, FoQuery};

fn main() {
    // ── A support setting with an FO-wrapped CQ ────────────────────────
    // Schema: Supt(eid, cid) — who supports whom; Pref(cid) — preferred
    // customers. Master data: DCust(cid), the complete domestic list.
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Supt", &["eid", "cid"]),
        RelationSchema::infinite("Pref", &["cid"]),
    ])
    .unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let pref = schema.rel_id("Pref").unwrap();
    let master = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = master.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&master);
    for c in ["c1", "c2", "c3"] {
        dm.insert(dcust, Tuple::new([Value::str(c)]));
    }

    // Constraint, written as a CQ even though it is projection-shaped:
    // Q(C) :- Supt(E, C), contained in DCust. The analyzer will certify it
    // down to an inclusion dependency.
    let cc_body = parse_cq(&schema, "Q(C) :- Supt(E, C).").unwrap();
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(cc_body),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), master.clone(), dm, v);

    // The query, in FO syntax: Q(c) := ∃e (Supt(e, c) ∧ ¬¬Pref(c)).
    // Semantically this is the CQ Q(C) :- Supt(E, C), Pref(C).
    let (c, e) = (Var(0), Var(1));
    let fo = FoQuery::new(
        vec![c],
        FoExpr::Exists(
            vec![e],
            Box::new(FoExpr::And(vec![
                FoExpr::Atom(Atom::new(supt, vec![Term::Var(e), Term::Var(c)])),
                FoExpr::not(FoExpr::not(FoExpr::Atom(Atom::new(
                    pref,
                    vec![Term::Var(c)],
                )))),
            ])),
        ),
        vec!["c".into(), "e".into()],
    );
    let query = Query::Fo(fo);

    // ── The report ─────────────────────────────────────────────────────
    let report = analyze(&setting, &query);
    println!("diagnostics:");
    for d in &report.diagnostics {
        println!("  {d}");
    }
    println!(
        "query fragment: declared {:?}, certified minimal {:?}",
        report.query.declared, report.query.minimal
    );
    println!("downgrades applied: {}", report.downgrade_count());

    // ── The gated decision ─────────────────────────────────────────────
    let mut db = Database::empty(&schema);
    db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));
    db.insert(pref, Tuple::new([Value::str("c1")]));

    let collector = Collector::new();
    let decision = try_rcdp_analyzed_probed(
        &setting,
        &query,
        &db,
        &SearchBudget::default(),
        Probe::attached(&collector),
    )
    .expect("analysis-gated rcdp");
    println!(
        "\nverdict (dispatched to the {:?} cell): {}",
        report.query.minimal, decision.verdict
    );
    println!(
        "analysis.downgrade counter: {}",
        collector.report().counter("analysis.downgrade")
    );

    // ── The Error path ─────────────────────────────────────────────────
    // Same query with the quantifier dropped: e is now unbound — unsafe FO
    // that would error deep inside the evaluator. The gate rejects it with
    // a typed report instead.
    let broken = Query::Fo(FoQuery::new(
        vec![c],
        FoExpr::Atom(Atom::new(supt, vec![Term::Var(e), Term::Var(c)])),
        vec!["c".into(), "e".into()],
    ));
    match try_rcdp_analyzed(&setting, &broken, &db, &SearchBudget::default()) {
        Err(DecisionError::Rejected(report)) => {
            println!("\nbroken query rejected before any search:");
            for d in report.errors() {
                println!("  {d}");
            }
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // ∃FO⁺ queries also classify: a disjunction of atoms is a genuine UCQ.
    let efo = EfoExpr::Or(vec![
        EfoExpr::Atom(Atom::new(pref, vec![Term::Var(c)])),
        EfoExpr::Atom(Atom::new(pref, vec![Term::Var(c)])),
    ]);
    let efo_q = Query::Efo(ric::query::EfoQuery::new(
        vec![Term::Var(c)],
        efo,
        vec!["c".into()],
    ));
    let report = analyze(&setting, &efo_q);
    println!(
        "\n∃FO⁺ disjunction: declared {:?}, minimal {:?}",
        report.query.declared, report.query.minimal
    );
}

//! Watching the deciders work: structured telemetry on the CRM scenario.
//!
//! Run with `cargo run --example observe_search`.
//!
//! Attaches a [`Collector`] to RCDP and RCQP decisions on the Section 2.3
//! customer-relationship-management setting and prints the aggregated
//! decision report: how many valuations were enumerated, how many
//! containment-constraint checks ran, how large the active domain was, and
//! how long each search phase took. The last section runs an undecidable
//! (FP) cell into its budget and shows how the structured `SearchStats` on
//! the `Unknown` verdict names the exact limit that was hit — the
//! diagnostics to read before raising a `SearchBudget` knob.

use ric::mdm::{CrmScenario, ScenarioParams};
use ric::prelude::*;
use ric::{rcdp_probed, rcqp_probed};

fn main() {
    let mut rng = ric::SplitMix64::seed_from_u64(2026);
    let sc = CrmScenario::generate(
        ScenarioParams {
            n_domestic: 5,
            n_international: 2,
            n_employees: 3,
            n_support: 7,
            at_most_k: Some(2),
            n_manage: 2,
        },
        &mut rng,
    );
    let budget = SearchBudget::default();

    // ── RCDP with a collector attached ─────────────────────────────────
    let q2 = sc.q2();
    let collector = Collector::new();
    let verdict = rcdp_probed(
        &sc.setting,
        &q2,
        &sc.db,
        &budget,
        Probe::attached(&collector),
    )
    .expect("rcdp");
    println!("Q2 = customers supported by e0");
    println!("verdict: {verdict}");
    println!("\ndecision report (RCDP):");
    print!("{}", collector.report());

    // ── RCQP on the same query ─────────────────────────────────────────
    let collector = Collector::new();
    let verdict =
        rcqp_probed(&sc.setting, &q2, &budget, Probe::attached(&collector)).expect("rcqp");
    println!("\nRCQ(Q2, Dm, V) nonempty? {verdict}");
    println!("\ndecision report (RCQP):");
    print!("{}", collector.report());

    // ── Budget-exhaustion diagnostics on undecidable cells ─────────────
    // Q3 in FP (datalog reachability) sits in the undecidable rows of
    // Tables I/II: only a bounded search is possible. Starve it and read
    // the diagnostics off the structured verdict.
    let q3 = sc.q3_datalog();
    let tiny = SearchBudget {
        max_delta_tuples: 1,
        max_candidates: 16,
        fresh_values: 1,
        ..SearchBudget::default()
    };
    let collector = Collector::new();
    let verdict =
        rcdp_probed(&sc.setting, &q3, &sc.db, &tiny, Probe::attached(&collector)).expect("rcdp");
    println!("\nQ3 (datalog, undecidable cell) under a starved budget:");
    report_unknown(&verdict);
    println!("\ndecision report (bounded semi-decision):");
    print!("{}", collector.report());

    // A smaller FP instance (the 2-head DFA reduction of Theorem 3.1) gets
    // past the pool check and genuinely exhausts its candidate budget — the
    // case where the diagnostics point at a raisable knob.
    use ric::reductions::two_head_dfa::{to_rcdp_instance, TwoHeadDfa};
    let (dfa_setting, dfa_q, dfa_db) = to_rcdp_instance(&TwoHeadDfa::empty_language());
    let starved = SearchBudget {
        max_delta_tuples: 2,
        max_candidates: 64,
        fresh_values: 1,
        ..SearchBudget::default()
    };
    let collector = Collector::new();
    let verdict = rcdp_probed(
        &dfa_setting,
        &dfa_q,
        &dfa_db,
        &starved,
        Probe::attached(&collector),
    )
    .expect("rcdp");
    println!("\n2-head DFA reduction (FP, undecidable cell), candidate budget 64:");
    report_unknown(&verdict);
    println!("\ndecision report (bounded semi-decision):");
    print!("{}", collector.report());
}

/// Print the structured diagnostics an `Unknown` verdict carries.
fn report_unknown(verdict: &Verdict) {
    println!("verdict: {verdict}");
    if let Verdict::Unknown { stats } = verdict {
        println!("  exhausted limit : {}", stats.limit.name());
        println!("  valuations seen : {}", stats.valuations);
        println!("  candidates seen : {}", stats.candidates);
        match stats.limit {
            // Structural bounds: no budget knob makes the search feasible.
            BudgetLimit::PoolBound | BudgetLimit::Unsupported => {
                println!("  -> structural limit; shrink the instance or rewrite the query")
            }
            knob => {
                println!(
                    "  -> raise SearchBudget::{} for a deeper search",
                    knob.name()
                )
            }
        }
    }
}
